"""Gather-Apply-Scatter engine — the (synchronous) GraphLab model.

GraphLab programs are also vertex-centric, but *pull*-based: an active
vertex **gathers** over its in-edges, **applies** the accumulated value,
and **scatters** along out-edges to activate neighbors. Distributed
GraphLab keeps replicas of cut vertices and synchronizes master ->
mirror after apply; that replica traffic — not per-edge messages — is
its communication cost, and this engine reproduces it:

* each worker owns the vertices its fragment owns, and stores *mirror
  values* for every remote in-neighbor of an owned vertex;
* after the apply phase, owners push changed values to the workers
  subscribing to them (batched per destination);
* scatter sends activation notices to the owners of out-neighbors
  (batched; empty payloads — activation is control traffic).

The engine is synchronous (GraphLab's sync engine), which is the mode
comparable with BSP systems in the paper's Table 1.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Hashable

from repro.graph.digraph import Graph
from repro.graph.fragment import FragmentedGraph
from repro.runtime.cluster import Cluster
from repro.runtime.costmodel import CostModel
from repro.runtime.metrics import RunMetrics

VertexId = Hashable


class GASProgram(abc.ABC):
    """A gather-apply-scatter algorithm (what GraphLab users write)."""

    name = "abstract"

    @abc.abstractmethod
    def initial_value(self, vertex: VertexId) -> object:
        """Starting vertex value."""

    @abc.abstractmethod
    def gather(
        self, vertex: VertexId, src_value: object, edge_weight: float
    ) -> object:
        """Contribution of one in-edge (source value is a replica read)."""

    @abc.abstractmethod
    def merge(self, a: object, b: object) -> object:
        """Combine two gather contributions."""

    @abc.abstractmethod
    def apply(
        self, vertex: VertexId, value: object, accumulated: object | None
    ) -> object:
        """New vertex value from the gathered accumulator."""

    def should_scatter(self, old: object, new: object) -> bool:
        """Whether the value change warrants activating out-neighbors."""
        return old != new

    def converged(self, old: object, new: object) -> bool:
        """Whether this vertex may deactivate after this round."""
        return old == new


@dataclass
class GASResult:
    """Final vertex values plus metering."""
    values: dict[VertexId, object]
    metrics: RunMetrics
    supersteps: int
    replica_syncs: int


@dataclass
class _GASWorker:
    wid: int
    owned: list[VertexId]
    #: owned vertex -> [(in-neighbor, weight)]
    in_adj: dict[VertexId, list[tuple[VertexId, float]]]
    #: owned vertex -> out-neighbor ids (for scatter routing)
    out_adj: dict[VertexId, list[VertexId]]
    #: owned vertex -> worker ids holding a replica of it
    subscribers: dict[VertexId, list[int]]
    values: dict[VertexId, object] = field(default_factory=dict)
    #: replicas of remote in-neighbors
    replicas: dict[VertexId, object] = field(default_factory=dict)
    active: set[VertexId] = field(default_factory=set)


class GASEngine:
    """Synchronous GAS over an edge-cut assignment with replica sync."""

    def __init__(
        self,
        graph: Graph,
        fragmented: FragmentedGraph,
        cost_model: CostModel | None = None,
        max_supersteps: int = 100_000,
    ) -> None:
        self.graph = graph
        self.fragmented = fragmented
        self.cost_model = cost_model or CostModel()
        self.max_supersteps = max_supersteps

    def run(self, program: GASProgram) -> GASResult:
        """Execute the program to termination; returns values + metrics."""
        cluster = Cluster(
            self.fragmented.num_fragments,
            self.cost_model,
            engine_name=f"gas[{program.name}]",
        )
        workers = self._build_workers()
        for worker in workers:
            for v in worker.owned:
                worker.values[v] = program.initial_value(v)
                worker.active.add(v)
            for v in worker.replicas:
                worker.replicas[v] = program.initial_value(v)

        replica_syncs = 0
        supersteps = 0
        while supersteps < self.max_supersteps:
            any_active = False
            with cluster.superstep("gas") as step:
                # Deliver replica updates and activations from last round.
                for worker in workers:
                    for msg in cluster.receive(worker.wid):
                        kind, items = msg.payload
                        if kind == "sync":
                            for v, value in items:
                                worker.replicas[v] = value
                        else:  # activation notices
                            for v in items:
                                worker.active.add(v)

                for worker in workers:
                    syncs = self._round(program, worker, step)
                    replica_syncs += syncs
                    if worker.active:
                        any_active = True
            supersteps += 1
            if not any_active and not cluster.mpi.pending():
                break

        values: dict[VertexId, object] = {}
        for worker in workers:
            values.update(worker.values)
        return GASResult(
            values=values,
            metrics=cluster.metrics,
            supersteps=supersteps,
            replica_syncs=replica_syncs,
        )

    # ------------------------------------------------------------------
    def _build_workers(self) -> list[_GASWorker]:
        owner = self.fragmented.owner_of
        n = self.fragmented.num_fragments
        in_adj: list[dict[VertexId, list[tuple[VertexId, float]]]] = [
            {} for _ in range(n)
        ]
        out_adj: list[dict[VertexId, list[VertexId]]] = [{} for _ in range(n)]
        subscribers: list[dict[VertexId, set[int]]] = [{} for _ in range(n)]
        replicas: list[set[VertexId]] = [set() for _ in range(n)]
        owned: list[list[VertexId]] = [[] for _ in range(n)]
        for v in self.graph.vertices():
            fid = owner(v)
            owned[fid].append(v)
            in_adj[fid][v] = []
            out_adj[fid][v] = []
        for edge in self.graph.edges():
            src_fid, dst_fid = owner(edge.src), owner(edge.dst)
            in_adj[dst_fid][edge.dst].append((edge.src, edge.weight))
            out_adj[src_fid][edge.src].append(edge.dst)
            if src_fid != dst_fid:
                # dst's worker reads src's value: it holds a replica.
                replicas[dst_fid].add(edge.src)
                subscribers[src_fid].setdefault(edge.src, set()).add(dst_fid)
        return [
            _GASWorker(
                wid=fid,
                owned=owned[fid],
                in_adj=in_adj[fid],
                out_adj=out_adj[fid],
                subscribers={
                    v: sorted(subs) for v, subs in subscribers[fid].items()
                },
                replicas=dict.fromkeys(replicas[fid]),
            )
            for fid in range(n)
        ]

    def _round(self, program: GASProgram, worker: _GASWorker, step) -> int:
        """Gather/apply/scatter for one worker; returns replica updates."""
        sync_batches: dict[int, list[tuple[VertexId, object]]] = {}
        activation_batches: dict[int, set[VertexId]] = {}
        syncs = 0
        with step.compute(worker.wid):
            active, worker.active = worker.active, set()
            for v in active:
                acc: object | None = None
                for src, weight in worker.in_adj[v]:
                    if src in worker.values:
                        src_value = worker.values[src]
                    else:
                        src_value = worker.replicas.get(src)
                    contrib = program.gather(v, src_value, weight)
                    acc = (
                        contrib
                        if acc is None
                        else program.merge(acc, contrib)
                    )
                old = worker.values[v]
                new = program.apply(v, old, acc)
                worker.values[v] = new
                if program.should_scatter(old, new):
                    # Replica sync to subscribers.
                    for sub in worker.subscribers.get(v, ()):
                        sync_batches.setdefault(sub, []).append((v, new))
                        syncs += 1
                    # Activate out-neighbors (local or remote).
                    for u in worker.out_adj[v]:
                        dst = self.fragmented.owner_of(u)
                        if dst == worker.wid:
                            worker.active.add(u)
                        else:
                            activation_batches.setdefault(dst, set()).add(u)
                if not program.converged(old, new):
                    worker.active.add(v)
        for dst, batch in sync_batches.items():
            step.send(worker.wid, dst, ("sync", batch))
        for dst, targets in activation_batches.items():
            step.send(worker.wid, dst, ("activate", sorted(targets)))
        return syncs
