"""The Simulation Theorem, operational: run vertex programs on GRAPE.

The paper's Simulation Theorem states that GRAPE optimally simulates
MapReduce, BSP and PRAM — "all algorithms in ... BSP (e.g., those
developed based on Pregel, Giraph ...) can be simulated by GRAPE using
n processors with the same number of supersteps and memory cost". This
module makes the BSP half of the claim executable:
:class:`VertexCentricAsPIE` wraps any
:class:`~repro.baselines.pregel.VertexProgram` into a
:class:`~repro.core.pie.PIEProgram`, mapping

* Pregel superstep       -> one IncEval round (PEval = superstep 0),
* intra-fragment message -> worker-local inbox delivery (free),
* cross-fragment message -> an update parameter on the target vertex
  whose value is ``(round, (msg, ...))`` — batches from several senders
  in the same round concatenate under the aggregate function,
* "all halted, no messages" -> GRAPE's inactivity condition, using the
  engine's local-activity hook for fragments whose remaining messages
  never cross a border.

Tests assert the theorem's observable: identical vertex values and the
same superstep count (±1 for the Assemble step) as the native
:class:`~repro.baselines.pregel.PregelEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.baselines.pregel import VertexContext, VertexProgram
from repro.core.aggregators import Aggregator
from repro.core.partial_order import UNORDERED
from repro.core.pie import ParamSpec, PIEProgram
from repro.core.update_params import UpdateParams
from repro.graph.digraph import Edge
from repro.graph.fragment import Fragment

VertexId = Hashable


def _merge_batches(cur: object, new: object) -> object:
    """Same round: concatenate; newer round: replace."""
    cur_round, cur_msgs = cur  # type: ignore[misc]
    new_round, new_msgs = new  # type: ignore[misc]
    if new_round > cur_round:
        return new
    if new_round < cur_round:
        return cur
    return (cur_round, cur_msgs + new_msgs)


#: Round-tagged message batches; lockstep rounds make this well-defined.
MESSAGE_BATCHES = Aggregator("message-batches", _merge_batches, UNORDERED)


@dataclass
class _SimPartial:
    """One fragment's simulated Pregel state."""

    values: dict = field(default_factory=dict)
    halted: dict = field(default_factory=dict)
    inbox: dict = field(default_factory=dict)  # vertex -> [msgs] next round
    out_edges: dict = field(default_factory=dict)
    round: int = 0
    sent_messages: int = 0

    def has_local_work(self) -> bool:
        """Pending local messages or unhalted vertices remain."""
        return bool(self.inbox) or any(
            not halted for halted in self.halted.values()
        )


class _AdapterWorker:
    """Duck-typed stand-in for the PregelEngine worker VertexContext uses."""

    __slots__ = ("values", "outbound")

    def __init__(self, values: dict) -> None:
        self.values = values
        self.outbound: list[tuple[VertexId, object]] = []


class VertexCentricAsPIE(PIEProgram):
    """Wrap a vertex program; GRAPE executes its supersteps faithfully."""

    def __init__(
        self, vertex_program: VertexProgram, num_vertices: int
    ) -> None:
        self.vertex_program = vertex_program
        self.num_vertices = num_vertices
        self.name = f"pregel-as-pie[{vertex_program.name}]"

    def param_spec(self, query) -> ParamSpec:
        return ParamSpec(aggregator=MESSAGE_BATCHES, default=None)

    # ------------------------------------------------------------------
    def _superstep(
        self, fragment: Fragment, partial: _SimPartial, params: UpdateParams
    ) -> None:
        """Run one Pregel superstep over the fragment's owned vertices."""
        program = self.vertex_program
        worker = _AdapterWorker(partial.values)
        inbox, partial.inbox = partial.inbox, {}
        # The adapter reproduces Pregel's unbounded supersteps by design;
        # the halted-vertex check below is its voting-to-halt shortcut.
        for v in fragment.owned:  # grape-lint: disable=GRP201
            messages = inbox.pop(v, None)
            if messages is None and (
                partial.halted[v] and partial.round > 0
            ):
                continue
            ctx = VertexContext(
                v,
                partial.round,
                worker,
                partial.out_edges[v],
                self.num_vertices,
            )
            program.compute(ctx, messages or [])
            partial.halted[v] = ctx._halted
        # Route what the vertices sent: local -> next round's inbox,
        # remote -> round-tagged update-parameter batches.
        partial.sent_messages += len(worker.outbound)
        remote: dict[VertexId, list[object]] = {}
        for target, payload in worker.outbound:
            if target in fragment.owned:
                partial.inbox.setdefault(target, []).append(payload)
            else:
                remote.setdefault(target, []).append(payload)
        combiner = program.combiner
        for target, payloads in remote.items():
            if combiner is not None and len(payloads) > 1:
                combined = payloads[0]
                for p in payloads[1:]:
                    combined = combiner(combined, p)
                payloads = [combined]
            params.set(target, (partial.round, tuple(payloads)))
        partial.round += 1

    # ------------------------------------------------------------------
    def declare_params(self, fragment, query, params) -> None:
        params.declare(fragment.border)

    def peval(self, fragment: Fragment, query, params) -> _SimPartial:
        partial = _SimPartial()
        for v in fragment.owned:
            partial.values[v] = self.vertex_program.initial_value(v)
            partial.halted[v] = False
            partial.out_edges[v] = fragment.graph.out_edges(v)
        self._superstep(fragment, partial, params)
        return partial

    def inceval(
        self,
        fragment: Fragment,
        query,
        partial: _SimPartial,
        params: UpdateParams,
        changed: set[VertexId],
    ) -> _SimPartial:
        incoming = []
        for v in changed:
            if v not in fragment.owned:
                continue  # batches aimed at vertices we merely mirror
            value = params.get(v)
            if value is None:
                continue
            incoming.append((v, value))
        if incoming:
            # An idle fragment's clock lags while it is (correctly)
            # skipped; incoming batches carry the global round, so fast-
            # forward before delivering (a message sent in superstep r is
            # consumed in superstep r+1).
            latest = max(msg_round for _, (msg_round, _) in incoming)
            partial.round = max(partial.round, latest + 1)
            for v, (msg_round, msgs) in incoming:
                if msg_round == partial.round - 1:
                    partial.inbox.setdefault(v, []).extend(msgs)
        self._superstep(fragment, partial, params)
        return partial

    def is_active(self, fragment: Fragment, partial: _SimPartial) -> bool:
        return partial.has_local_work()

    def assemble(self, query, partials: Sequence[_SimPartial]) -> dict:
        values: dict[VertexId, object] = {}
        for partial in partials:
            values.update(partial.values)
        return values
