"""Baseline engines the paper compares against, rebuilt from scratch.

* :mod:`pregel` — vertex-centric BSP ("think like a vertex"), the model
  of Pregel and Giraph;
* :mod:`gas` — gather-apply-scatter with replica synchronization, the
  model of (synchronous) GraphLab / PowerGraph;
* :mod:`blogel` — block-centric BSP ("think like a block"), the model of
  Blogel.

All three run on the same simulated cluster and cost model as the GRAPE
engine so the Table 1 / Fig. 3(5) comparisons are apples-to-apples: the
differences that emerge — superstep counts, per-vertex overhead, message
volume — are consequences of the programming models, not of the
substrate.
"""

from repro.baselines.pregel import PregelEngine, PregelResult, VertexProgram
from repro.baselines.pregel_as_pie import VertexCentricAsPIE
from repro.baselines.gas import GASEngine, GASProgram, GASResult
from repro.baselines.blogel import BlockProgram, BlogelEngine, BlogelResult
from repro.baselines.mapreduce import (
    MapReduceEngine,
    MapReduceJob,
    MapReduceResult,
)

__all__ = [
    "MapReduceEngine",
    "MapReduceJob",
    "MapReduceResult",
    "VertexCentricAsPIE",
    "PregelEngine",
    "PregelResult",
    "VertexProgram",
    "GASEngine",
    "GASProgram",
    "GASResult",
    "BlockProgram",
    "BlogelEngine",
    "BlogelResult",
]
