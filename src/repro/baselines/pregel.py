"""Vertex-centric BSP engine — the Pregel / Giraph programming model.

"To use Pregel, one has to 'think like a vertex' and recast the entire
existing algorithms into a vertex-centric model" (Section 1). This
engine implements that model faithfully so the recast algorithms can be
compared against GRAPE's plugged-in sequential ones:

* computation is a sequence of supersteps;
* in each superstep every *active* vertex runs ``compute(vertex, msgs)``,
  may update its value, send messages along edges and vote to halt;
* a halted vertex is reactivated by an incoming message;
* the run ends when all vertices are halted and no messages are in
  flight.

Messages between vertices on the same worker are delivered locally (no
network bytes); cross-worker messages are batched per destination worker
per superstep, as real Pregel implementations do, while the per-vertex
message count is tracked separately (the units the demo reports, e.g.
"ships 40M messages").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

from repro.graph.digraph import Edge
from repro.graph.fragment import FragmentedGraph
from repro.runtime.cluster import Cluster
from repro.runtime.costmodel import CostModel
from repro.runtime.metrics import RunMetrics

VertexId = Hashable


class VertexContext:
    """Per-vertex API handed to ``compute``: value, messages, halting."""

    __slots__ = (
        "vertex",
        "superstep",
        "_worker",
        "_halted",
        "_out_edges",
        "num_vertices",
    )

    def __init__(
        self,
        vertex: VertexId,
        superstep: int,
        worker: "_Worker",
        out_edges: list[Edge],
        num_vertices: int,
    ) -> None:
        self.vertex = vertex
        self.superstep = superstep
        self._worker = worker
        self._halted = False
        self._out_edges = out_edges
        self.num_vertices = num_vertices

    @property
    def value(self) -> object:
        """This vertex's current value."""
        return self._worker.values[self.vertex]

    @value.setter
    def value(self, new: object) -> None:
        """This vertex's current value."""
        self._worker.values[self.vertex] = new

    @property
    def out_edges(self) -> list[Edge]:
        """This vertex's outgoing edges."""
        return self._out_edges

    def send(self, target: VertexId, message: object) -> None:
        """Send a message for delivery in the next superstep."""
        self._worker.outbound.append((target, message))

    def send_to_neighbors(self, message: object) -> None:
        """Send ``message`` along every outgoing edge."""
        for edge in self._out_edges:
            self.send(edge.dst, message)

    def vote_to_halt(self) -> None:
        """Halt this vertex until a message reactivates it."""
        self._halted = True


class VertexProgram(abc.ABC):
    """A vertex-centric algorithm (what Giraph users must write)."""

    name = "abstract"

    @abc.abstractmethod
    def initial_value(self, vertex: VertexId) -> object:
        """Value each vertex starts with."""

    @abc.abstractmethod
    def compute(
        self, ctx: VertexContext, messages: list[object]
    ) -> None:
        """One vertex's superstep. Superstep 0 has no messages."""

    #: Optional message combiner (e.g. min) applied per target vertex
    #: before shipping — None disables combining (Giraph's default).
    combiner: Callable[[object, object], object] | None = None


@dataclass
class PregelResult:
    """Final vertex values plus metering."""

    values: dict[VertexId, object]
    metrics: RunMetrics
    supersteps: int
    vertex_messages: int


@dataclass
class _Worker:
    """One worker's vertex state."""

    wid: int
    vertices: list[VertexId]
    out_edges: dict[VertexId, list[Edge]]
    values: dict[VertexId, object] = field(default_factory=dict)
    halted: dict[VertexId, bool] = field(default_factory=dict)
    inbox: dict[VertexId, list[object]] = field(default_factory=dict)
    outbound: list[tuple[VertexId, object]] = field(default_factory=list)


class PregelEngine:
    """Runs vertex programs over a fragmented graph on the simulated
    cluster, with Pregel's synchronous semantics."""

    def __init__(
        self,
        fragmented: FragmentedGraph,
        cost_model: CostModel | None = None,
        max_supersteps: int = 100_000,
    ) -> None:
        self.fragmented = fragmented
        self.cost_model = cost_model or CostModel()
        self.max_supersteps = max_supersteps

    def run(self, program: VertexProgram) -> PregelResult:
        """Execute the program to termination; returns values + metrics."""
        cluster = Cluster(
            self.fragmented.num_fragments,
            self.cost_model,
            engine_name=f"pregel[{program.name}]",
        )
        n = cluster.num_workers
        num_vertices = self.fragmented.num_vertices
        workers = [self._make_worker(fid) for fid in range(n)]
        for worker in workers:
            for v in worker.vertices:
                worker.values[v] = program.initial_value(v)
                worker.halted[v] = False

        vertex_messages = 0
        superstep = 0
        while superstep < self.max_supersteps:
            any_active = False
            with cluster.superstep("superstep") as step:
                # Deliver batches that arrived at the last barrier.
                for worker in workers:
                    for msg in cluster.receive(worker.wid):
                        for target, payload in msg.payload:
                            worker.inbox.setdefault(target, []).append(payload)

                for worker in workers:
                    sent = self._compute_worker(
                        program, worker, superstep, step, num_vertices
                    )
                    vertex_messages += sent
                    if sent or any(
                        not halted for halted in worker.halted.values()
                    ):
                        any_active = True
            superstep += 1
            if not any_active and not cluster.mpi.pending():
                break

        values: dict[VertexId, object] = {}
        for worker in workers:
            values.update(worker.values)
        return PregelResult(
            values=values,
            metrics=cluster.metrics,
            supersteps=superstep,
            vertex_messages=vertex_messages,
        )

    # ------------------------------------------------------------------
    def _make_worker(self, fid: int) -> _Worker:
        frag = self.fragmented.fragments[fid]
        vertices = list(frag.owned)
        out_edges = {v: frag.graph.out_edges(v) for v in vertices}
        return _Worker(wid=fid, vertices=vertices, out_edges=out_edges)

    def _compute_worker(
        self,
        program: VertexProgram,
        worker: _Worker,
        superstep: int,
        step,
        num_vertices: int,
    ) -> int:
        """Run all active vertices of one worker; returns messages sent."""
        inbox, worker.inbox = worker.inbox, {}
        with step.compute(worker.wid):
            for v in worker.vertices:
                messages = inbox.pop(v, None)
                if messages is None and (worker.halted[v] and superstep > 0):
                    continue
                ctx = VertexContext(
                    v, superstep, worker, worker.out_edges[v], num_vertices
                )
                program.compute(ctx, messages or [])
                worker.halted[v] = ctx._halted
            sent = len(worker.outbound)
            batches = self._route(program, worker)
        for dst, batch in batches.items():
            step.send(worker.wid, dst, batch)
        worker.outbound = []
        return sent

    def _route(
        self, program: VertexProgram, worker: _Worker
    ) -> dict[int, list[tuple[VertexId, object]]]:
        """Split the outbound queue into per-destination-worker batches.

        Local targets short-circuit into the worker's own inbox; the
        optional combiner collapses messages per target vertex first.
        """
        pending: dict[VertexId, list[object]] = {}
        for target, payload in worker.outbound:
            pending.setdefault(target, []).append(payload)
        if program.combiner is not None:
            for target, payloads in pending.items():
                combined = payloads[0]
                for p in payloads[1:]:
                    combined = program.combiner(combined, p)
                pending[target] = [combined]
        batches: dict[int, list[tuple[VertexId, object]]] = {}
        for target, payloads in pending.items():
            dst = self.fragmented.owner_of(target)
            if dst == worker.wid:
                worker.inbox.setdefault(target, []).extend(payloads)
            else:
                batch = batches.setdefault(dst, [])
                batch.extend((target, p) for p in payloads)
        return batches
