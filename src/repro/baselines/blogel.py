"""Block-centric BSP engine — the Blogel programming model.

Blogel ("think like a graph" / block-centric [Yan et al., PVLDB'14])
treats connected *blocks* as the unit of computation: a B-compute
function runs a sequential algorithm over a whole block per superstep
and exchanges per-vertex messages with other blocks. This sits between
vertex-centric systems (far fewer supersteps: information crosses a
block per step, not an edge) and GRAPE (blocks are still fractions of a
fragment, message exchange is per-vertex per-edge without the
coordinator's aggregate-and-route of update parameters, and there is no
bounded incremental step).

Blocks are computed at load time as the connected components of each
worker's owned subgraph — Blogel's partitioner does the same job with a
Voronoi heuristic; combining this engine with
:class:`~repro.partition.bfs.BFSPartitioner` mimics its quality.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Hashable

from repro.graph.digraph import Graph
from repro.graph.fragment import FragmentedGraph
from repro.runtime.cluster import Cluster
from repro.runtime.costmodel import CostModel
from repro.runtime.metrics import RunMetrics
from repro.utils.dsu import DisjointSet

VertexId = Hashable


@dataclass
class Block:
    """A connected block of one worker's fragment."""

    bid: int
    worker: int
    graph: Graph  # induced subgraph over the block's vertices
    vertices: set[VertexId]


class BlockContext:
    """B-compute API: per-vertex values and cross-block sends."""

    __slots__ = ("block", "values", "_outbound")

    def __init__(self, block: Block, values: dict) -> None:
        self.block = block
        self.values = values  # global per-worker value dict (shared)
        self._outbound: list[tuple[VertexId, object]] = []

    def send(self, target: VertexId, message: object) -> None:
        """Send a per-vertex message to a vertex in another block."""
        self._outbound.append((target, message))


class BlockProgram(abc.ABC):
    """A block-centric algorithm (what Blogel users write)."""

    name = "abstract"

    @abc.abstractmethod
    def initial_value(self, vertex: VertexId) -> object:
        """Starting value for each vertex."""

    @abc.abstractmethod
    def block_compute(
        self,
        ctx: BlockContext,
        messages: dict[VertexId, list[object]],
        superstep: int,
    ) -> bool:
        """Run the block's sequential step; return True if still active."""


@dataclass
class BlogelResult:
    """Final vertex values plus metering."""
    values: dict[VertexId, object]
    metrics: RunMetrics
    supersteps: int
    num_blocks: int
    vertex_messages: int


@dataclass
class _BlogelWorker:
    wid: int
    blocks: list[Block]
    values: dict[VertexId, object] = field(default_factory=dict)
    inbox: dict[int, dict[VertexId, list[object]]] = field(
        default_factory=dict
    )  # block id -> vertex -> payloads


class BlogelEngine:
    """Runs block programs over a fragmented graph."""

    def __init__(
        self,
        fragmented: FragmentedGraph,
        cost_model: CostModel | None = None,
        max_supersteps: int = 100_000,
    ) -> None:
        self.fragmented = fragmented
        self.cost_model = cost_model or CostModel()
        self.max_supersteps = max_supersteps
        self._blocks_of: dict[VertexId, tuple[int, int]] = {}
        self._workers = self._build_workers()

    @property
    def num_blocks(self) -> int:
        """Total number of blocks across all workers."""
        return sum(len(w.blocks) for w in self._workers)

    def run(self, program: BlockProgram) -> BlogelResult:
        """Execute the program to termination; returns values + metrics."""
        cluster = Cluster(
            self.fragmented.num_fragments,
            self.cost_model,
            engine_name=f"blogel[{program.name}]",
        )
        workers = self._workers
        for worker in workers:
            worker.values = {}
            worker.inbox = {}
            for block in worker.blocks:
                for v in block.vertices:
                    worker.values[v] = program.initial_value(v)

        vertex_messages = 0
        supersteps = 0
        # Every block is active in superstep 0; afterwards a block runs
        # only when it has messages or stayed active.
        active: set[tuple[int, int]] = {
            (w.wid, b.bid) for w in workers for b in w.blocks
        }
        while supersteps < self.max_supersteps:
            with cluster.superstep("b-compute") as step:
                for worker in workers:
                    for msg in cluster.receive(worker.wid):
                        for target, payload in msg.payload:
                            wid, bid = self._blocks_of[target]
                            worker.inbox.setdefault(bid, {}).setdefault(
                                target, []
                            ).append(payload)
                            active.add((wid, bid))
                for worker in workers:
                    sent = self._compute_worker(
                        program, worker, active, supersteps, step
                    )
                    vertex_messages += sent
            supersteps += 1
            if not active and not cluster.mpi.pending():
                break

        values: dict[VertexId, object] = {}
        for worker in workers:
            values.update(worker.values)
        return BlogelResult(
            values=values,
            metrics=cluster.metrics,
            supersteps=supersteps,
            num_blocks=self.num_blocks,
            vertex_messages=vertex_messages,
        )

    # ------------------------------------------------------------------
    def _build_workers(self) -> list[_BlogelWorker]:
        workers = []
        for frag in self.fragmented.fragments:
            owned_graph = frag.graph.subgraph(frag.owned)
            dsu = DisjointSet(owned_graph.vertices())
            for edge in owned_graph.edges():
                dsu.union(edge.src, edge.dst)
            blocks = []
            for bid, (_, members) in enumerate(sorted(
                dsu.groups().items(), key=lambda kv: str(kv[0])
            )):
                block = Block(
                    bid=bid,
                    worker=frag.fid,
                    graph=frag.graph.subgraph(
                        set(members)
                        | {
                            u
                            for v in members
                            for u in frag.graph.out_neighbors(v)
                        }
                    ),
                    vertices=set(members),
                )
                blocks.append(block)
                for v in members:
                    self._blocks_of[v] = (frag.fid, bid)
            workers.append(_BlogelWorker(wid=frag.fid, blocks=blocks))
        return workers

    def _compute_worker(
        self,
        program: BlockProgram,
        worker: _BlogelWorker,
        active: set[tuple[int, int]],
        superstep: int,
        step,
    ) -> int:
        inbox, worker.inbox = worker.inbox, {}
        batches: dict[int, list[tuple[VertexId, object]]] = {}
        sent = 0
        with step.compute(worker.wid):
            for block in worker.blocks:
                key = (worker.wid, block.bid)
                messages = inbox.get(block.bid, {})
                if key not in active and not messages:
                    continue
                active.discard(key)
                ctx = BlockContext(block, worker.values)
                still_active = program.block_compute(ctx, messages, superstep)
                if still_active:
                    active.add(key)
                sent += len(ctx._outbound)
                for target, payload in ctx._outbound:
                    dst_wid, dst_bid = self._blocks_of[target]
                    if dst_wid == worker.wid:
                        worker.inbox.setdefault(dst_bid, {}).setdefault(
                            target, []
                        ).append(payload)
                        active.add((dst_wid, dst_bid))
                    else:
                        batches.setdefault(dst_wid, []).append(
                            (target, payload)
                        )
        for dst, batch in batches.items():
            step.send(worker.wid, dst, batch)
        return sent
