"""Service-level metering: latency percentiles, cache traffic, ΔG work.

Everything here is derived from *simulated* time and deterministic
counters, so two replays of the same workload trace produce
byte-identical reports — a :class:`ServiceReport` is reproducible
evidence, in the same spirit as the chaos report.

The per-run engine numbers aggregate through
:meth:`~repro.runtime.metrics.RunMetrics.as_dict`, so ``grape run
--json`` and ``grape serve --json`` share one metrics vocabulary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.runtime.metrics import RunMetrics


#: Cost model for the serving clock. The engine's ``total_time`` is
#: measured wall time (not replay-stable), so the service charges each
#: run a *simulated* cost from its deterministic counters instead —
#: barriers, shipped messages and shipped bytes. Two replays of one
#: trace therefore produce byte-identical reports. The constants live
#: in :mod:`repro.obs.timeline` so trace spans and query charges speak
#: the same cost vocabulary; they are re-exported here for back-compat.
from repro.obs.timeline import (  # noqa: E402  (doc comment above)
    BYTE_COST,
    MSG_COST,
    SYNC_COST,
)


def run_cost(metrics: RunMetrics) -> float:
    """Deterministic simulated cost of one engine run."""
    m = metrics.as_dict()
    return (
        m["num_supersteps"] * SYNC_COST
        + m["total_messages"] * MSG_COST
        + m["total_bytes"] * BYTE_COST
    )


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    ``q`` in [0, 100]; returns 0.0 for an empty sample.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if q <= 0:
        return ordered[0]
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math import
    return ordered[min(int(rank), len(ordered)) - 1]


@dataclass
class ClassStats:
    """Per-query-class serving counters."""

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    cache_hits: int = 0
    #: Simulated seconds from admission to completion, one per request.
    latencies: list[float] = field(default_factory=list)
    #: Engine totals over the class's cache misses (RunMetrics schema;
    #: time is the simulated :func:`run_cost`, not measured wall time).
    engine_time: float = 0.0
    engine_supersteps: int = 0
    engine_messages: int = 0

    def record_run(self, metrics: RunMetrics) -> None:
        """Fold one engine run's totals into the class aggregate."""
        m = metrics.as_dict()
        self.engine_time += run_cost(metrics)
        self.engine_supersteps += m["num_supersteps"]
        self.engine_messages += m["total_messages"]

    def as_dict(self) -> dict:
        """Counters plus derived latency percentiles."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": (
                self.cache_hits / self.completed if self.completed else 0.0
            ),
            "latency_p50": percentile(self.latencies, 50),
            "latency_p95": percentile(self.latencies, 95),
            "latency_max": max(self.latencies) if self.latencies else 0.0,
            "engine": {
                "simulated_time": self.engine_time,
                "num_supersteps": self.engine_supersteps,
                "total_messages": self.engine_messages,
            },
        }


@dataclass
class StandingStats:
    """Lifecycle counters for one registered standing query."""

    name: str
    query_class: str
    repairs: int = 0
    #: Settled-vertex (or equivalent) work of the initial full run.
    cold_work: int | None = None
    #: Work absorbed incrementally across all update batches.
    incremental_work: int = 0
    #: Work a full recomputation did across all *verified* batches.
    full_work: int = 0
    incremental_time: float = 0.0
    full_time: float = 0.0
    verified_batches: int = 0
    mismatches: int = 0

    def as_dict(self) -> dict:
        """Counters plus the incremental-vs-full work ratio."""
        return {
            "name": self.name,
            "query_class": self.query_class,
            "repairs": self.repairs,
            "cold_work": self.cold_work,
            "incremental_work": self.incremental_work,
            "full_work": self.full_work,
            "work_ratio": (
                self.incremental_work / self.full_work
                if self.full_work
                else None
            ),
            "incremental_time": self.incremental_time,
            "full_time": self.full_time,
            "verified_batches": self.verified_batches,
            "mismatches": self.mismatches,
        }


@dataclass
class UpdateStats:
    """Mutation-side counters (ΔG absorption)."""

    batches: int = 0
    edges: int = 0
    deletes: int = 0
    reweights: int = 0
    #: Evicted hot cache entries recomputed eagerly at the new version.
    rewarmed: int = 0

    def as_dict(self) -> dict:
        return {
            "batches": self.batches,
            "edges": self.edges,
            "deletes": self.deletes,
            "reweights": self.reweights,
            "rewarmed": self.rewarmed,
        }


@dataclass
class ServiceReport:
    """Snapshot of a service's lifetime metrics (JSON- and human-ready)."""

    graph_version: int
    simulated_time: float
    num_workers: int
    queue: dict
    cache: dict
    classes: dict[str, dict]
    standing: list[dict]
    updates: dict

    # ------------------------------------------------------------------
    @property
    def survived(self) -> bool:
        """No standing query ever diverged from a full recomputation."""
        return all(s["mismatches"] == 0 for s in self.standing)

    @property
    def cache_hit_rate(self) -> float:
        """Global cache hit rate over all lookups."""
        return self.cache.get("hit_rate", 0.0)

    def as_dict(self) -> dict:
        """The full report as one JSON-ready dict."""
        return {
            "graph_version": self.graph_version,
            "simulated_time": self.simulated_time,
            "num_workers": self.num_workers,
            "survived": self.survived,
            "queue": self.queue,
            "cache": self.cache,
            "classes": self.classes,
            "standing": self.standing,
            "updates": self.updates,
        }

    def to_json(self) -> str:
        """The report as indented JSON."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def format(self) -> str:
        """Human-readable serving report."""
        lines = [
            f"service report — graph v{self.graph_version}, "
            f"{self.num_workers} workers, "
            f"{self.simulated_time:.4f}s simulated",
            "",
            f"  queue: max depth {self.queue['max_depth']}, "
            f"{self.queue['rejected']} shed "
            f"(capacity {self.queue['capacity']}, "
            f"concurrency {self.queue['concurrency']})",
            f"  cache: {self.cache['hits']} hits / "
            f"{self.cache['misses']} misses "
            f"({self.cache['hit_rate']:.1%}), "
            f"{self.cache['invalidated']} invalidated on mutation",
            "",
            f"  {'class':<10} {'done':>5} {'hits':>5} {'shed':>5} "
            f"{'p50(s)':>9} {'p95(s)':>9}",
        ]
        for name in sorted(self.classes):
            c = self.classes[name]
            lines.append(
                f"  {name:<10} {c['completed']:>5} {c['cache_hits']:>5} "
                f"{c['rejected']:>5} {c['latency_p50']:>9.4f} "
                f"{c['latency_p95']:>9.4f}"
            )
        if self.standing:
            lines.append("")
            lines.append(
                f"  standing queries "
                f"({self.updates['batches']} update batches, "
                f"{self.updates['edges']} edges absorbed):"
            )
            for s in self.standing:
                ratio = s["work_ratio"]
                ratio_s = f"{ratio:.1%} of full" if ratio is not None else "n/a"
                verdict = (
                    "VERIFIED"
                    if s["verified_batches"] and not s["mismatches"]
                    else (f"{s['mismatches']} MISMATCHES"
                          if s["mismatches"] else "unverified")
                )
                lines.append(
                    f"    {s['name']:<14} {s['repairs']} repairs, "
                    f"incremental work {s['incremental_work']} "
                    f"({ratio_s}); {verdict}"
                )
        lines.append("")
        verdict = (
            "standing answers identical to full recomputation"
            if self.survived
            else "STANDING ANSWER DIVERGENCE — serving hole"
        )
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)
