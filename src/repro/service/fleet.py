"""Resilient serving fleet: N replicated GrapeServices behind one router.

The engine layer already self-heals (``repro.runtime.faults`` + the
supervisor's checkpoint recovery), but a single
:class:`~repro.service.service.GrapeService` is still a single point of
failure. :class:`FleetRouter` closes that gap on the same deterministic
virtual timeline:

* **Replica-level fault injection** reuses the chaos layer's
  :class:`~repro.runtime.faults.FaultPlan` /
  :class:`~repro.runtime.faults.FaultInjector`: crash faults kill a
  replica (fatal = state lost, rebuilt from checkpoint), stragglers
  delay its serve, and :class:`~repro.runtime.faults.UpdateLagFault`
  makes it fall behind on ΔG batches. All draws come from the plan's
  seeded RNG, so a chaos run replays byte-identically.
* **Deadlines, retries, hedging**: every query carries a deadline in
  simulated seconds; failed attempts fail over to the next replica
  under a fleet-wide retry budget with capped exponential backoff, and
  an attempt whose injected delay exceeds the hedge threshold is
  duplicated to a second replica — first answer wins, the loser is
  cancelled.
* **Circuit breakers**: per replica, closed -> open after K consecutive
  failures -> half-open probe; open replicas leave the rotation until
  their cooldown expires.
* **Graceful degradation**: when no fresh replica can meet the
  deadline, the newest answer the fleet has served for that query is
  returned tagged ``stale=True`` with a staleness bound (graph versions
  behind), or a lagging-but-alive replica answers at its old version —
  an admitted query is *never* dropped.
* **Recovery with delta catch-up**: the router journals every
  ``apply_updates`` batch; a crashed replica restores its newest
  :class:`~repro.core.checkpoint.CheckpointPolicy` snapshot, replays
  the missed journal suffix, and must pass a byte-identical audit
  against a healthy replica before re-entering rotation.

Everything is simulated time and seeded randomness: the
:class:`FleetReport` and the exported fleet trace are byte-stable
across replays of the same seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.checkpoint import CheckpointPolicy
from repro.engineapi.query import build_query
from repro.engineapi.registry import get_program
from repro.engineapi.session import Session
from repro.errors import (
    FatalWorkerFailure,
    ServiceError,
    StorageError,
    TransientWorkerFailure,
)
from repro.graph.generators import graph_from_spec
from repro.runtime.faults import (
    CrashFault,
    FaultPlan,
    StragglerFault,
    UpdateLagFault,
)
from repro.service.cache import Uncacheable, freeze
from repro.service.metrics import percentile
from repro.service.scheduler import DEFAULT_PRIORITY
from repro.service.service import GrapeService, canonical_answer_bytes
from repro.storage.dfs import SimulatedDFS

#: Circuit-breaker states (surfaced verbatim in the report and trace).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

#: Simulated cost charged for serving a degraded answer from the
#: fleet's answer store (same order as a service cache hit).
STALE_SERVE_COST = 1e-4


def default_chaos_plan(seed: int, fault_rate: float = 0.1) -> FaultPlan:
    """The ``grape serve --chaos-seed`` fault mix at one overall rate.

    A blend of the three replica-level fault classes, scaled off one
    ``fault_rate`` knob: transient crashes (retried), rarer fatal
    crashes (checkpoint + catch-up recovery), stragglers (hedge
    trigger) and update lag (stale serving). ``fault_rate=0`` is an
    empty plan — the fleet runs fault-free but still deterministic.
    """
    if fault_rate <= 0.0:
        return FaultPlan(faults=(), seed=seed)
    return FaultPlan(
        faults=(
            CrashFault(
                probability=min(1.0, fault_rate * 0.25),
                fatal=True,
                times=None,
            ),
            CrashFault(
                probability=min(1.0, fault_rate * 0.5),
                fatal=False,
                times=None,
            ),
            StragglerFault(
                probability=min(1.0, fault_rate),
                delay=0.05,
                times=None,
            ),
            UpdateLagFault(
                probability=min(1.0, fault_rate * 0.5),
                lag=2,
                times=None,
            ),
        ),
        seed=seed,
    )


@dataclass
class FleetResult:
    """Outcome of one fleet-served query."""

    seq: int
    query_class: str
    answer: object
    #: Replica whose answer won (-1 = served from the fleet's store).
    replica: int
    #: True when the answer is older than the fleet's graph version.
    stale: bool
    #: Graph versions the answer is behind (0 for fresh answers).
    staleness: int
    #: Simulated seconds from admission to answer (backoffs included).
    latency: float
    #: Serve attempts dispatched (hedges included).
    attempts: int
    #: ``fresh`` / ``stale_replica`` / ``stale_cache`` / ``recovered``.
    outcome: str
    hedged: bool = False
    #: Graph version the answer is valid at.
    version: int = 1


@dataclass
class Replica:
    """One service replica plus its health bookkeeping."""

    rid: int
    service: GrapeService | None
    checkpoints: CheckpointPolicy
    dead: bool = False
    #: Last known graph version (mirrors the service; survives a crash).
    version: int = 1
    #: ΔG batches this replica still has to skip (update-lag fault).
    lag_remaining: int = 0
    breaker_state: str = BREAKER_CLOSED
    consecutive_failures: int = 0
    #: Simulated time an open breaker re-admits a half-open probe.
    open_until: float = 0.0

    @property
    def health(self) -> str:
        """``down`` / ``lagging`` / breaker state (``closed`` = healthy)."""
        if self.dead:
            return "down"
        if self.breaker_state != BREAKER_CLOSED:
            return self.breaker_state
        if self.lag_remaining > 0:
            return "lagging"
        return "healthy"


@dataclass
class FleetReport:
    """Deterministic snapshot of a fleet's lifetime under (maybe) chaos."""

    replicas: int
    graph_version: int
    simulated_time: float
    admitted: int
    answered: int
    fresh: int
    stale_replica_served: int
    stale_cache_served: int
    deadline_misses: int
    hedges: int
    hedge_wins: int
    failovers: int
    retry_budget_left: int
    breaker_trips: int
    recoveries: int
    catchup_batches: int
    audits_failed: int
    latencies: list[float] = field(default_factory=list)
    replica_states: list[dict] = field(default_factory=list)
    faults: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def availability(self) -> float:
        """Answered over admitted (the number chaos tries to dent)."""
        return self.answered / self.admitted if self.admitted else 1.0

    @property
    def stale_rate(self) -> float:
        """Degraded (stale-tagged) answers over all answers."""
        if not self.answered:
            return 0.0
        return (
            self.stale_replica_served + self.stale_cache_served
        ) / self.answered

    @property
    def survived(self) -> bool:
        """Every admitted query answered and every rejoin audit passed."""
        return (
            self.answered == self.admitted
            and self.audits_failed == 0
            and all(
                r["service"] is None or r["service"]["survived"]
                for r in self.replica_states
            )
        )

    def as_dict(self) -> dict:
        """The full report as one JSON-ready dict (sorted, replay-stable)."""
        return {
            "replicas": self.replicas,
            "graph_version": self.graph_version,
            "simulated_time": self.simulated_time,
            "admitted": self.admitted,
            "answered": self.answered,
            "availability": self.availability,
            "fresh": self.fresh,
            "stale_replica_served": self.stale_replica_served,
            "stale_cache_served": self.stale_cache_served,
            "stale_rate": self.stale_rate,
            "deadline_misses": self.deadline_misses,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "failovers": self.failovers,
            "retry_budget_left": self.retry_budget_left,
            "breaker_trips": self.breaker_trips,
            "recoveries": self.recoveries,
            "catchup_batches": self.catchup_batches,
            "audits_failed": self.audits_failed,
            "survived": self.survived,
            "latency_p50": percentile(self.latencies, 50),
            "latency_p95": percentile(self.latencies, 95),
            "latency_p99": percentile(self.latencies, 99),
            "latency_max": max(self.latencies) if self.latencies else 0.0,
            "replica_states": self.replica_states,
            "faults": self.faults,
        }

    def to_json(self) -> str:
        """The report as indented, key-sorted JSON (byte-stable)."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def format(self) -> str:
        """Human-readable fleet report."""
        d = self.as_dict()
        lines = [
            f"fleet report — {self.replicas} replicas, "
            f"graph v{self.graph_version}, "
            f"{self.simulated_time:.4f}s simulated",
            "",
            f"  availability: {d['availability']:.1%} "
            f"({self.answered}/{self.admitted} answered, "
            f"{self.deadline_misses} deadline misses)",
            f"  degraded: {self.stale_replica_served} stale-replica + "
            f"{self.stale_cache_served} stale-cache "
            f"({d['stale_rate']:.1%} of answers)",
            f"  failover: {self.failovers} retries "
            f"(budget left {self.retry_budget_left}), "
            f"{self.hedges} hedges ({self.hedge_wins} won), "
            f"{self.breaker_trips} breaker trips",
            f"  recovery: {self.recoveries} replicas rejoined, "
            f"{self.catchup_batches} journal batches replayed, "
            f"{self.audits_failed} audits failed",
            f"  latency: p50 {d['latency_p50']:.4f}s  "
            f"p95 {d['latency_p95']:.4f}s  p99 {d['latency_p99']:.4f}s",
            "",
            f"  {'replica':<8} {'health':<10} {'version':>7} "
            f"{'breaker':<10} {'failures':>8}",
        ]
        for r in self.replica_states:
            lines.append(
                f"  {r['replica']:<8} {r['health']:<10} {r['version']:>7} "
                f"{r['breaker']:<10} {r['consecutive_failures']:>8}"
            )
        lines.append("")
        verdict = (
            "every admitted query answered (fresh or tagged-stale)"
            if self.survived
            else "DROPPED QUERIES OR FAILED AUDITS — serving hole"
        )
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)


class FleetRouter:
    """A deterministic router over N :class:`GrapeService` replicas.

    Args:
        graph_factory: zero-arg callable returning a *fresh* copy of the
            served graph (each replica owns one; all must be identical).
        replicas: number of service replicas.
        num_workers: simulated workers per replica session.
        partition: partition strategy per replica session.
        faults: a :class:`FaultPlan` of replica-level faults (crash,
            straggler, update_lag); None = fault-free.
        deadline: default per-query deadline in simulated seconds
            (None = no deadline; queries never degrade on latency).
        hedge_threshold: injected delay beyond which an attempt is
            hedged to a second replica.
        retry_budget: fleet-wide failover budget (total retries across
            the fleet's lifetime).
        backoff_base / backoff_cap: capped exponential failover backoff
            (``base * 2**(retry-1)``, capped), charged to the latency.
        breaker_threshold: consecutive failures that open a replica's
            circuit breaker.
        breaker_cooldown: simulated seconds an open breaker waits before
            admitting a half-open probe.
        checkpoint_every: snapshot a replica every N applied batches.
        checkpoint_keep: snapshots retained per replica.
        service_kwargs: forwarded to every replica's ``GrapeService``.
        audit_query: ``(query_class, params)`` run off the books on a
            rejoining replica and a healthy one; byte-identical answers
            gate re-entering rotation.
        tracer: optional :class:`~repro.obs.Tracer`; the *fleet* emits
            ``fleet_*`` events into it (replicas stay untraced so the
            export reflects router activity).
    """

    def __init__(
        self,
        graph_factory,
        replicas: int = 3,
        num_workers: int = 2,
        partition: str = "hash",
        faults: FaultPlan | None = None,
        deadline: float | None = None,
        hedge_threshold: float = 0.02,
        retry_budget: int = 64,
        backoff_base: float = 0.005,
        backoff_cap: float = 0.1,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 0.5,
        checkpoint_every: int = 1,
        checkpoint_keep: int = 3,
        service_kwargs: dict | None = None,
        checkpoint_dir: str | None = None,
        audit_query: tuple[str, dict | None] = ("cc", None),
        tracer=None,
    ) -> None:
        if replicas < 1:
            raise ServiceError(f"fleet needs >= 1 replica, got {replicas}")
        if retry_budget < 0:
            raise ServiceError(
                f"retry budget must be >= 0, got {retry_budget}"
            )
        self._graph_factory = graph_factory
        self._num_workers = num_workers
        self._partition = partition
        self._service_kwargs = dict(service_kwargs or {})
        self._injector = faults.injector() if faults is not None else None
        self.deadline = deadline
        self.hedge_threshold = hedge_threshold
        self.retry_budget = retry_budget
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.checkpoint_every = max(1, checkpoint_every)
        self.checkpoint_keep = checkpoint_keep
        self._audit_class, self._audit_params = audit_query
        self._tracer = tracer
        if checkpoint_dir is None:
            import tempfile

            checkpoint_dir = tempfile.mkdtemp(prefix="grape-fleet-")
        self._dfs = SimulatedDFS(checkpoint_dir)
        self._clock = 0.0
        self._next_seq = 0
        self._rr = 0  # round-robin routing pointer
        #: ΔG batches in fleet order; batch i produced graph version i+2.
        self._journal: list[dict] = []
        #: Standing-query specs, re-registered on replica recovery.
        self._standing_specs: list[tuple[str, str, dict]] = []
        #: Newest fresh answer per canonical query key (degraded source).
        self._answers: dict[tuple, tuple[int, object]] = {}
        # Fleet counters (all deterministic).
        self._admitted = 0
        self._answered = 0
        self._fresh = 0
        self._stale_replica = 0
        self._stale_cache = 0
        self._deadline_misses = 0
        self._hedges = 0
        self._hedge_wins = 0
        self._failovers = 0
        self._breaker_trips = 0
        self._recoveries = 0
        self._catchup_batches = 0
        self._audits_failed = 0
        self._latencies: list[float] = []
        self._replicas = [
            self._build_replica(rid) for rid in range(replicas)
        ]
        for replica in self._replicas:
            self._checkpoint(replica)

    # ------------------------------------------------------------------
    # Construction / recovery plumbing
    # ------------------------------------------------------------------
    def _build_replica(self, rid: int) -> Replica:
        return Replica(
            rid=rid,
            service=self._build_service(self._graph_factory(), version=1),
            checkpoints=CheckpointPolicy(
                self._dfs, every=1, tag=f"replica-{rid}",
                keep=self.checkpoint_keep,
            ),
        )

    def _build_service(self, graph, version: int) -> GrapeService:
        session = Session(
            graph,
            num_workers=self._num_workers,
            partition=self._partition,
        )
        return GrapeService(
            session, initial_version=version, **self._service_kwargs
        )

    # ------------------------------------------------------------------
    # Versioned handle
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Fleet graph version (1 + applied update batches)."""
        return 1 + len(self._journal)

    @property
    def clock(self) -> float:
        """Simulated fleet time."""
        return self._clock

    @property
    def replicas(self) -> list[Replica]:
        """The replica roster (read-only by convention)."""
        return self._replicas

    @property
    def fault_counters(self):
        """The injector's counters (None when running fault-free)."""
        return self._injector.counters if self._injector else None

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _pick(
        self, exclude: set[int], require_fresh: bool = True
    ) -> Replica | None:
        """Next replica in rotation that can take a request.

        Deterministic round-robin; skips dead replicas, excluded ones,
        open breakers (unless their cooldown elapsed — then the replica
        re-enters as a half-open probe) and, with ``require_fresh``,
        replicas behind the fleet's graph version.
        """
        n = len(self._replicas)
        for off in range(n):
            idx = (self._rr + off) % n
            replica = self._replicas[idx]
            if replica.dead or replica.rid in exclude:
                continue
            if replica.breaker_state == BREAKER_OPEN:
                if self._clock >= replica.open_until:
                    self._set_breaker(replica, BREAKER_HALF_OPEN)
                else:
                    continue
            if require_fresh and replica.service.version != self.version:
                continue
            self._rr = (idx + 1) % n
            return replica
        return None

    def _set_breaker(self, replica: Replica, state: str) -> None:
        if replica.breaker_state == state:
            return
        replica.breaker_state = state
        if state == BREAKER_OPEN:
            replica.open_until = self._clock + self.breaker_cooldown
            self._breaker_trips += 1
        if self._tracer is not None:
            self._tracer.fleet_breaker(
                replica.rid, state, replica.consecutive_failures, self._clock
            )

    def _breaker_failure(self, replica: Replica) -> None:
        replica.consecutive_failures += 1
        if replica.breaker_state == BREAKER_HALF_OPEN:
            self._set_breaker(replica, BREAKER_OPEN)
        elif (
            replica.breaker_state == BREAKER_CLOSED
            and replica.consecutive_failures >= self.breaker_threshold
        ):
            self._set_breaker(replica, BREAKER_OPEN)

    def _breaker_success(self, replica: Replica) -> None:
        replica.consecutive_failures = 0
        if replica.breaker_state != BREAKER_CLOSED:
            self._set_breaker(replica, BREAKER_CLOSED)

    def _crash(self, replica: Replica) -> None:
        """A fatal loss: the replica's in-memory state is gone."""
        replica.version = replica.service.version
        replica.service = None
        replica.dead = True
        replica.consecutive_failures += 1

    def _delay_for(self, replica: Replica, seq: int) -> float:
        """Consult the injector for one serve attempt (may raise)."""
        if self._injector is None:
            return 0.0
        return self._injector.on_compute(replica.rid, seq, "serve")

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def query(
        self,
        query_class: str,
        params: dict | None = None,
        client: str = "anon",
        priority: int = DEFAULT_PRIORITY,
        deadline: float | None = None,
    ) -> FleetResult:
        """Serve one query; an admitted query is always answered.

        The degradation chain: fresh replica within the deadline (with
        failover, backoff and hedging) -> newest stored answer tagged
        stale -> live lagging replica tagged stale -> forced recovery
        of a crashed replica -> fresh-but-late answer. Only when every
        rung is empty (impossible with >= 1 checkpoint) does it raise.
        """
        params = dict(params or {})
        build_query(query_class, **params)  # validate up front
        if deadline is None:
            deadline = self.deadline
        seq = self._next_seq
        self._next_seq += 1
        self._admitted += 1
        start = self._clock
        elapsed = 0.0  # backoff charged before the winning attempt
        attempts = 0
        retries = 0
        hedged = False
        tried: set[int] = set()
        failed_from: int | None = None
        late: tuple[float, int, object] | None = None
        won: tuple[object, int, float] | None = None

        while won is None:
            replica = self._pick(tried, require_fresh=True)
            if replica is None:
                break
            if failed_from is not None and self._tracer is not None:
                self._tracer.fleet_failover(
                    seq, failed_from, replica.rid, retries,
                    backoff=min(
                        self.backoff_base * 2 ** max(0, retries - 1),
                        self.backoff_cap,
                    ),
                    clock=self._clock,
                )
            failed_from = None
            attempts += 1
            tried.add(replica.rid)
            try:
                delay = self._delay_for(replica, seq)
            except FatalWorkerFailure:
                self._crash(replica)
                if not self._consume_retry():
                    break
                retries += 1
                elapsed += self._backoff(retries)
                failed_from = replica.rid
                continue
            except TransientWorkerFailure:
                self._breaker_failure(replica)
                if not self._consume_retry():
                    break
                retries += 1
                elapsed += self._backoff(retries)
                failed_from = replica.rid
                continue
            served = replica.service.query(
                query_class, params, client=client, priority=priority
            )
            self._breaker_success(replica)
            answer, cost, winner = served.answer, served.cost + delay, replica
            if delay > self.hedge_threshold:
                answer, cost, winner, hedged = self._hedge(
                    seq, query_class, params, client, priority,
                    tried, replica, answer, cost,
                )
                attempts += int(hedged)
            total = elapsed + cost
            if deadline is not None and total > deadline:
                self._deadline_misses += 1
                if late is None or (cost, winner.rid) < (late[0], late[1]):
                    late = (cost, winner.rid, answer)
                if not self._consume_retry():
                    break
                retries += 1
                elapsed += self._backoff(retries)
                failed_from = winner.rid
                continue
            won = (answer, winner.rid, total)

        if won is not None:
            return self._finish(
                seq, query_class, params, start, won[0], won[1], won[2],
                attempts, "fresh", hedged,
            )
        return self._degrade(
            seq, query_class, params, client, priority, start, elapsed,
            attempts, tried, late, hedged,
        )

    def _backoff(self, retry: int) -> float:
        return min(self.backoff_base * 2 ** (retry - 1), self.backoff_cap)

    def _consume_retry(self) -> bool:
        if self.retry_budget <= 0:
            return False
        self.retry_budget -= 1
        self._failovers += 1
        return True

    def _hedge(
        self, seq, query_class, params, client, priority,
        tried, primary, answer, cost,
    ):
        """Duplicate a slow attempt to a second replica; first wins."""
        second = self._pick(tried, require_fresh=True)
        if second is None:
            return answer, cost, primary, False
        tried.add(second.rid)
        self._hedges += 1
        winner = primary
        try:
            d2 = self._delay_for(second, seq)
            s2 = second.service.query(
                query_class, params, client=client, priority=priority
            )
            self._breaker_success(second)
            c2 = s2.cost + d2
            # Both copies start together: earlier finish wins, ties
            # break toward the lower replica id.
            if (c2, second.rid) < (cost, primary.rid):
                answer, cost, winner = s2.answer, c2, second
                self._hedge_wins += 1
        except FatalWorkerFailure:
            self._crash(second)  # the hedge died; the primary stands
        except TransientWorkerFailure:
            self._breaker_failure(second)
        if self._tracer is not None:
            self._tracer.fleet_hedge(
                seq, primary.rid, second.rid, winner.rid, self._clock
            )
        return answer, cost, winner, True

    def _degrade(
        self, seq, query_class, params, client, priority, start, elapsed,
        attempts, tried, late, hedged,
    ) -> FleetResult:
        """No fresh replica met the deadline — walk the fallback chain."""
        # 1. Newest stored answer for this query (stale-tagged when the
        #    graph moved on; still fresh when it did not).
        key = self._answer_key(query_class, params)
        if key is not None and key in self._answers:
            version, answer = self._answers[key]
            staleness = self.version - version
            return self._finish(
                seq, query_class, params, start, answer, -1,
                elapsed + STALE_SERVE_COST, attempts,
                "fresh" if staleness == 0 else "stale_cache", hedged,
                version=version,
            )
        # 2. A live replica behind the fleet version answers at its own
        #    (older) version — correct then, tagged stale now.
        replica = self._pick(tried, require_fresh=False)
        if replica is None:
            replica = self._pick(set(), require_fresh=False)
        if replica is not None:
            try:
                delay = self._delay_for(replica, seq)
                served = replica.service.query(
                    query_class, params, client=client, priority=priority
                )
                self._breaker_success(replica)
                staleness = self.version - replica.service.version
                return self._finish(
                    seq, query_class, params, start, served.answer,
                    replica.rid, elapsed + served.cost + delay, attempts + 1,
                    "fresh" if staleness == 0 else "stale_replica", hedged,
                    version=replica.service.version,
                )
            except FatalWorkerFailure:
                self._crash(replica)
            except TransientWorkerFailure:
                self._breaker_failure(replica)
        # 3. Forced recovery: bring a crashed replica back through
        #    checkpoint + catch-up, then serve fresh from it.
        for candidate in self._replicas:
            if candidate.dead and self.recover(candidate.rid):
                served = candidate.service.query(
                    query_class, params, client=client, priority=priority
                )
                return self._finish(
                    seq, query_class, params, start, served.answer,
                    candidate.rid, elapsed + served.cost, attempts + 1,
                    "recovered", hedged,
                )
        # 4. A fresh answer that blew the deadline beats no answer.
        if late is not None:
            cost, rid, answer = late
            return self._finish(
                seq, query_class, params, start, answer, rid,
                elapsed + cost, attempts, "fresh", hedged,
            )
        raise ServiceError(
            f"fleet cannot serve {query_class!r}: no live replica, no "
            "stored answer and no recoverable checkpoint"
        )

    def _answer_key(self, query_class: str, params: dict) -> tuple | None:
        try:
            return (query_class, freeze(params))
        except Uncacheable:
            return None

    def _finish(
        self, seq, query_class, params, start, answer, replica_id, latency,
        attempts, outcome, hedged, version: int | None = None,
    ) -> FleetResult:
        if version is None:
            version = self.version
        stale = version < self.version
        staleness = self.version - version
        self._answered += 1
        if stale:
            if replica_id == -1:
                self._stale_cache += 1
            else:
                self._stale_replica += 1
        else:
            self._fresh += 1
            key = self._answer_key(query_class, params)
            if key is not None:
                self._answers[key] = (version, answer)
        self._latencies.append(latency)
        self._clock = start + latency
        if self._tracer is not None:
            self._tracer.fleet_route(
                seq, query_class, replica=replica_id, attempts=attempts,
                outcome=outcome, stale=stale, staleness=staleness,
                start=start, finish=self._clock,
            )
        return FleetResult(
            seq=seq,
            query_class=query_class,
            answer=answer,
            replica=replica_id,
            stale=stale,
            staleness=staleness,
            latency=latency,
            attempts=attempts,
            outcome=outcome,
            hedged=hedged,
            version=version,
        )

    # ------------------------------------------------------------------
    # Standing queries
    # ------------------------------------------------------------------
    def register_standing(
        self, name: str, query_class: str, params: dict | None = None
    ) -> object:
        """Register a standing query on every live replica."""
        params = dict(params or {})
        answer = None
        for replica in self._replicas:
            if replica.dead:
                continue
            result = replica.service.register_standing(
                name, query_class, params
            )
            if answer is None:
                answer = result
        self._standing_specs.append((name, query_class, params))
        return answer

    def standing_answer(self, name: str) -> object:
        """The maintained answer from the first fresh live replica."""
        for replica in self._replicas:
            if not replica.dead and replica.service.version == self.version:
                return replica.service.standing_answer(name)
        raise ServiceError(
            f"no fresh replica can answer standing query {name!r}"
        )

    # ------------------------------------------------------------------
    # Mutation path + journal
    # ------------------------------------------------------------------
    def apply_updates(
        self, edges=(), deletes=(), reweights=(), verify: bool = False
    ) -> dict[int, object]:
        """Fan one ΔG batch out to the fleet; journal it for catch-up.

        Replicas hit by an update-lag fault defer the batch (they keep
        serving at their old version, tagged stale); dead replicas skip
        it entirely — the journal replays it to them when they rejoin.
        Returns replica id -> that replica's ``UpdateOutcome`` (absent
        for laggards and the dead).
        """
        epoch = len(self._journal)
        record = {
            "edges": list(edges),
            "deletes": list(deletes),
            "reweights": list(reweights),
        }
        self._journal.append(record)
        outcomes: dict[int, object] = {}
        for replica in self._replicas:
            if replica.dead:
                continue
            if self._injector is not None:
                lag = self._injector.on_update(replica.rid, epoch)
                if lag > 0:
                    replica.lag_remaining = max(replica.lag_remaining, lag)
            if replica.lag_remaining > 0:
                replica.lag_remaining -= 1
                continue
            if replica.service.version < self.version - 1:
                # Lag window over: replay the whole missed suffix
                # (including this batch) in journal order.
                self._catch_up(replica, audit=False)
            else:
                outcomes[replica.rid] = replica.service.apply_updates(
                    record["edges"],
                    verify=verify,
                    deletes=record["deletes"],
                    reweights=record["reweights"],
                )
            replica.version = replica.service.version
            if (epoch + 1) % self.checkpoint_every == 0:
                self._checkpoint(replica)
        return outcomes

    def _catch_up(self, replica: Replica, audit: bool) -> bool:
        """Replay the journal suffix a replica missed; optionally audit."""
        from_version = replica.service.version
        missed = self._journal[from_version - 1:]
        for batch in missed:
            replica.service.apply_updates(
                batch["edges"],
                verify=False,
                deletes=batch["deletes"],
                reweights=batch["reweights"],
            )
        replica.version = replica.service.version
        self._catchup_batches += len(missed)
        audit_ok = self._audit(replica) if audit else True
        if self._tracer is not None:
            self._tracer.fleet_catchup(
                replica.rid, from_version, replica.service.version,
                len(missed), audit_ok, self._clock,
            )
        return audit_ok

    def _checkpoint(self, replica: Replica) -> None:
        """Snapshot a replica's graph + version to the simulated DFS."""
        replica.checkpoints.save(
            replica.service.version,
            {
                "version": replica.service.version,
                "graph": replica.service.session.graph,
            },
        )

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self, rid: int) -> bool:
        """Rebuild a crashed replica: checkpoint + journal catch-up + audit.

        Returns True when the replica passed its byte-identical audit
        against a healthy replica and re-entered rotation; False leaves
        it out (and counts a failed audit).
        """
        replica = self._replicas[rid]
        if not replica.dead:
            return True
        try:
            _, snapshot = replica.checkpoints.load_latest()
            graph, version = snapshot["graph"], snapshot["version"]
        except StorageError:
            graph, version = self._graph_factory(), 1
        replica.service = self._build_service(graph, version=version)
        for name, query_class, params in self._standing_specs:
            replica.service.register_standing(name, query_class, params)
        audit_ok = self._catch_up(replica, audit=True)
        if not audit_ok:
            self._audits_failed += 1
            replica.service = None
            return False
        replica.dead = False
        replica.lag_remaining = 0
        replica.consecutive_failures = 0
        if replica.breaker_state != BREAKER_CLOSED:
            self._set_breaker(replica, BREAKER_CLOSED)
        replica.version = replica.service.version
        self._checkpoint(replica)
        self._recoveries += 1
        return True

    def _audit(self, replica: Replica) -> bool:
        """Byte-identical audit of a rejoining replica vs a healthy one.

        Compares every standing answer plus the configured audit query,
        run off the service books through each replica's session (the
        audit never pollutes serving stats or caches).
        """
        reference = next(
            (
                r for r in self._replicas
                if r is not replica
                and not r.dead
                and r.service is not None
                and r.service.version == replica.service.version
            ),
            None,
        )
        if reference is None:
            return True  # nothing to compare against — trust catch-up
        for name, _, _ in self._standing_specs:
            if canonical_answer_bytes(
                replica.service.standing_answer(name)
            ) != canonical_answer_bytes(
                reference.service.standing_answer(name)
            ):
                return False
        return self._session_answer_bytes(
            replica
        ) == self._session_answer_bytes(reference)

    def _session_answer_bytes(self, replica: Replica) -> bytes:
        query = build_query(
            self._audit_class, **(self._audit_params or {})
        )
        program = get_program(self._audit_class)
        result = replica.service.session.run(program, query)
        return canonical_answer_bytes(result.answer)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> FleetReport:
        """Deterministic snapshot of the fleet's lifetime metrics."""
        counters = self.fault_counters
        return FleetReport(
            replicas=len(self._replicas),
            graph_version=self.version,
            simulated_time=self._clock,
            admitted=self._admitted,
            answered=self._answered,
            fresh=self._fresh,
            stale_replica_served=self._stale_replica,
            stale_cache_served=self._stale_cache,
            deadline_misses=self._deadline_misses,
            hedges=self._hedges,
            hedge_wins=self._hedge_wins,
            failovers=self._failovers,
            retry_budget_left=self.retry_budget,
            breaker_trips=self._breaker_trips,
            recoveries=self._recoveries,
            catchup_batches=self._catchup_batches,
            audits_failed=self._audits_failed,
            latencies=list(self._latencies),
            replica_states=[
                {
                    "replica": r.rid,
                    # A replica can be version-lagging even after its
                    # lag window closed (catch-up happens on the next
                    # fan-out) — the fleet-level view catches that.
                    "health": (
                        "lagging"
                        if r.health == "healthy" and r.version < self.version
                        else r.health
                    ),
                    "version": r.version,
                    "breaker": r.breaker_state,
                    "consecutive_failures": r.consecutive_failures,
                    "lag_remaining": r.lag_remaining,
                    "service": (
                        None if r.service is None
                        else r.service.report().as_dict()
                    ),
                }
                for r in self._replicas
            ],
            faults=counters.as_dict() if counters else {},
        )


# ----------------------------------------------------------------------
# Trace replay (the `grape serve --replicas N` path)
# ----------------------------------------------------------------------
def build_fleet(
    trace: dict,
    replicas: int = 3,
    graph_spec: str | None = None,
    faults: FaultPlan | None = None,
    deadline: float | None = None,
    tracer=None,
    **kwargs,
) -> FleetRouter:
    """Construct the fleet a workload trace describes."""
    from repro.errors import GrapeError

    spec = graph_spec or trace.get("graph")
    if not spec:
        raise GrapeError(
            "workload trace names no graph; add a 'graph' spec or pass one"
        )
    knobs = trace.get("service", {})
    service_kwargs = {
        "max_pending": int(knobs.get("max_pending", 64)),
        "concurrency": int(knobs.get("concurrency", 2)),
        "cache_capacity": int(knobs.get("cache_capacity", 256)),
        "cache_ttl": knobs.get("cache_ttl"),
        "rewarm_hottest": int(knobs.get("rewarm_hottest", 0)),
    }
    return FleetRouter(
        lambda: graph_from_spec(spec),
        replicas=replicas,
        num_workers=int(trace.get("workers", 4)),
        partition=trace.get("partition", "hash"),
        faults=faults,
        deadline=deadline,
        service_kwargs=service_kwargs,
        tracer=tracer,
        **kwargs,
    )


def replay_fleet_trace(
    trace: dict,
    fleet: FleetRouter | None = None,
    replicas: int = 3,
    graph_spec: str | None = None,
    faults: FaultPlan | None = None,
    deadline: float | None = None,
    max_queries: int | None = None,
    verify: bool | None = None,
    tracer=None,
) -> tuple[FleetRouter, FleetReport]:
    """Replay a workload trace against a replicated fleet.

    Query ops serve immediately through the router (the fleet has no
    batch drain — ``drain`` ops are no-ops); update ops fan out and are
    journaled. Returns ``(fleet, final report)``.
    """
    if fleet is None:
        fleet = build_fleet(
            trace,
            replicas=replicas,
            graph_spec=graph_spec,
            faults=faults,
            deadline=deadline,
            tracer=tracer,
        )
    for standing in trace.get("standing", []):
        fleet.register_standing(
            standing["name"], standing["class"], standing.get("params")
        )
    queries_sent = 0
    for op in trace["ops"]:
        kind = op["op"]
        if kind == "query":
            for _ in range(int(op.get("repeat", 1))):
                if max_queries is not None and queries_sent >= max_queries:
                    break
                queries_sent += 1
                fleet.query(
                    op["class"],
                    op.get("params"),
                    client=op.get("client", "trace"),
                    priority=int(op.get("priority", DEFAULT_PRIORITY)),
                )
        elif kind == "update":
            if max_queries is not None and queries_sent >= max_queries:
                continue
            fleet.apply_updates(
                op.get("edges", ()),
                deletes=op.get("deletes", ()),
                reweights=op.get("reweights", ()),
                verify=op.get("verify", False) if verify is None else verify,
            )
    return fleet, fleet.report()
