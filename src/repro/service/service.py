"""GrapeService: many logical clients, one versioned graph, warm answers.

The serving layer the ROADMAP's "heavy traffic" north star needs in
front of :class:`~repro.core.engine.GrapeEngine`:

* every query goes through a **bounded admission queue** and a
  priority scheduler with ``concurrency`` simulated worker lanes —
  overload sheds requests with a typed error instead of queueing
  without bound;
* the graph lives behind a **monotonically versioned handle**; repeated
  queries at an unchanged version are answered from a
  :class:`~repro.service.cache.ResultCache` in O(1);
* **standing queries** registered once are kept warm across mutations:
  ``apply_updates`` routes a mixed ΔG batch (insertions, deletions,
  weight changes) into the fragments *once*, bumps the version,
  invalidates the cache, and repairs every registered answer with
  ``run_incremental`` — monotone resume for safe ops, scoped
  non-monotone repair for the rest — then re-seeds the cache at the new
  version with the repaired answers and optionally re-warms the
  hottest evicted entries (``rewarm_hottest``).

Consistency model: queries observe the graph version they were admitted
under; ``apply_updates`` therefore drains the queue before mutating (the
drained results ride along in its outcome). All timing is simulated and
deterministic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.delta import (
    EdgeDelete,
    EdgeReweight,
    GraphDelta,
)
from repro.engineapi.query import build_query
from repro.engineapi.registry import get_program
from repro.engineapi.session import Session
from repro.errors import GraphError, ProgramError, ServiceError
from repro.service.cache import (
    CacheEntry,
    ResultCache,
    Uncacheable,
    cache_key,
)
from repro.service.metrics import (
    ClassStats,
    ServiceReport,
    StandingStats,
    UpdateStats,
    run_cost,
)
from repro.service.scheduler import (
    DEFAULT_PRIORITY,
    AdmissionQueue,
    LaneClock,
    QueryRequest,
)


def canonical_answer_bytes(answer: object) -> bytes:
    """Deterministic byte form of an assembled answer (for comparison)."""
    return json.dumps(answer, sort_keys=True, default=repr).encode()


def _work_mark(program) -> int | None:
    """Start index into the program's work log, if it keeps one."""
    log = getattr(program, "work_log", None)
    return len(log) if log is not None else None


def _work_since(program, mark: int | None) -> int | None:
    """Settled-vertex work recorded since ``mark`` (None = no probe)."""
    if mark is None:
        return None
    return sum(settled for _, _, settled in program.work_log[mark:])


@dataclass
class ServedResult:
    """Outcome of one served query."""

    seq: int
    query_class: str
    answer: object
    from_cache: bool
    #: Simulated seconds from admission to completion.
    latency: float
    #: Graph version the answer is valid at.
    version: int
    #: Simulated run cost (cache-hit cost for hits).
    cost: float


@dataclass
class StandingQuery:
    """One registered query kept warm across graph mutations."""

    name: str
    query_class: str
    params: dict
    query: object
    program: object
    state: object
    answer: object
    stats: StandingStats


@dataclass
class UpdateOutcome:
    """What one ``apply_updates`` batch did."""

    version: int
    edges: int
    #: Cache entries dropped because their version is now stale.
    invalidated: int
    #: Deletion ops in the batch.
    deletes: int = 0
    #: Reweight ops in the batch.
    reweights: int = 0
    #: Hot evicted entries recomputed eagerly at the new version.
    rewarmed: int = 0
    #: Results of queries drained before the mutation (seq -> result).
    drained: dict[int, ServedResult] = field(default_factory=dict)
    #: Standing-query name -> repaired answer.
    repaired: dict[str, object] = field(default_factory=dict)
    #: Standing-query name -> verified-identical flag (only when
    #: ``verify=True``).
    verified: dict[str, bool] = field(default_factory=dict)


class GrapeService:
    """Concurrent query serving over one session's fragmented graph.

    Args:
        session: the graph + partition + cluster to serve from.
        max_pending: admission-queue bound (backpressure beyond it).
        concurrency: simulated worker lanes queries dispatch onto.
        cache_capacity: result-cache entry bound (LRU beyond it).
        cache_ttl: result lifetime in simulated seconds (None = no TTL).
        hit_cost: simulated seconds charged for a cache hit.
        rewarm_hottest: after every mutation batch, re-run (and
            re-cache) up to this many of the hottest invalidated cache
            entries so repeat clients stay on the hit path (0 = off).
        program_kwargs: per-query-class constructor kwargs (e.g.
            ``{"pagerank": {"total_vertices": n}}``); pagerank's
            ``total_vertices`` is defaulted from the graph automatically.
        initial_version: starting graph version. A restored fleet
            replica resumes at its checkpoint's version so journal
            catch-up and cache keys stay aligned with the fleet.
    """

    def __init__(
        self,
        session: Session,
        max_pending: int = 64,
        concurrency: int = 2,
        cache_capacity: int = 256,
        cache_ttl: float | None = None,
        hit_cost: float = 1e-4,
        rewarm_hottest: int = 0,
        program_kwargs: dict[str, dict] | None = None,
        initial_version: int = 1,
        tracer=None,
    ) -> None:
        self.session = session
        if tracer is not None:
            session.tracer = tracer
        #: The session's tracer (if any) also records service admission,
        #: queue/lane and update activity — simulated clock only.
        self._tracer = getattr(session, "tracer", None)
        self._engine = session.engine()
        self._queue = AdmissionQueue(capacity=max_pending)
        self._lanes = LaneClock(concurrency=concurrency)
        self._cache = ResultCache(capacity=cache_capacity, ttl=cache_ttl)
        self._hit_cost = hit_cost
        if rewarm_hottest < 0:
            raise ServiceError(
                f"rewarm_hottest must be >= 0, got {rewarm_hottest}"
            )
        self._rewarm_hottest = rewarm_hottest
        self._program_kwargs = dict(program_kwargs or {})
        if initial_version < 1:
            raise ServiceError(
                f"initial_version must be >= 1, got {initial_version}"
            )
        self._version = initial_version
        self._clock = 0.0
        self._pending_queries: dict[int, object] = {}
        self._standing: dict[str, StandingQuery] = {}
        self._classes: dict[str, ClassStats] = {}
        self._updates = UpdateStats()

    # ------------------------------------------------------------------
    # Versioned handle
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Current graph version (bumped by every update batch)."""
        return self._version

    @property
    def clock(self) -> float:
        """Simulated service time."""
        return self._clock

    @property
    def queue_depth(self) -> int:
        """Requests currently pending admission."""
        return self._queue.depth

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def submit(
        self,
        query_class: str,
        params: dict | None = None,
        client: str = "anon",
        priority: int = DEFAULT_PRIORITY,
    ) -> int:
        """Admit one query; returns its ticket (sequence number).

        Raises :class:`~repro.errors.ServiceOverloadedError` when the
        admission queue is full and
        :class:`~repro.errors.QueryError` when the parameters don't
        build a valid query of ``query_class``.
        """
        params = dict(params or {})
        query = build_query(query_class, **params)  # validate up front
        stats = self._class_stats(query_class)
        cacheable = True
        try:
            cache_key(self._version, query_class, params)
        except Uncacheable:
            cacheable = False
            self._cache.stats.uncacheable += 1
        request = QueryRequest(
            seq=self._queue.next_seq(),
            query_class=query_class,
            params=params,
            client=client,
            priority=priority,
            submit_time=self._clock,
            cacheable=cacheable,
        )
        try:
            self._queue.admit(
                request, in_flight=self._lanes.busy_at(self._clock)
            )
        except ServiceError:
            stats.rejected += 1
            if self._tracer is not None:
                self._tracer.svc_reject(query_class, self._clock)
            raise
        stats.submitted += 1
        self._pending_queries[request.seq] = query
        if self._tracer is not None:
            self._tracer.svc_submit(
                request.seq,
                query_class,
                clock=self._clock,
                cacheable=cacheable,
                priority=priority,
            )
        return request.seq

    def drain(self, mode: str = "batch") -> dict[int, ServedResult]:
        """Dispatch every pending request; returns ticket -> result.

        ``mode="batch"`` (the default) dispatches in strict
        ``(priority, admission order)`` onto the earliest free simulated
        lane — the whole backlog is treated as one admission instant.
        ``mode="event"`` replays the timeline honestly: admissions
        interleave with lane completions, so a request is only eligible
        once its submit time has been reached, and an urgent request
        that arrives after a lane already started cannot retroactively
        preempt it. When every pending request shares one submit time
        the two modes dispatch identically. Either way the service
        clock advances to the point where every lane is idle again.
        """
        if mode not in ("batch", "event"):
            raise ServiceError(
                f"unknown drain mode {mode!r}; use 'batch' or 'event'"
            )
        results: dict[int, ServedResult] = {}
        if mode == "batch":
            for request in self._queue.take_all():
                results[request.seq] = self._dispatch(request)
        else:
            remaining = self._queue.take_all()
            while remaining:
                # The next dispatch happens when a lane frees up — or,
                # if nothing has arrived by then, when the next request
                # is admitted.
                now = min(self._lanes.free_at)
                arrived = [r for r in remaining if r.submit_time <= now]
                if not arrived:
                    now = min(r.submit_time for r in remaining)
                    arrived = [r for r in remaining if r.submit_time <= now]
                request = min(arrived, key=lambda r: r.order_key)
                remaining.remove(request)
                results[request.seq] = self._dispatch(request)
        self._clock = max(self._clock, self._lanes.horizon)
        return results

    def _dispatch(self, request: QueryRequest) -> ServedResult:
        """Run one admitted request on the earliest free lane."""
        query = self._pending_queries.pop(request.seq)
        lane, start = self._lanes.start(request.submit_time)
        answer, cost, from_cache = self._execute(request, query)
        finish = start + cost
        self._lanes.occupy(lane, finish)
        stats = self._class_stats(request.query_class)
        stats.completed += 1
        stats.latencies.append(finish - request.submit_time)
        if from_cache:
            stats.cache_hits += 1
        if self._tracer is not None:
            self._tracer.svc_query(
                request.seq,
                request.query_class,
                lane=lane,
                submit=request.submit_time,
                start=start,
                finish=finish,
                from_cache=from_cache,
                cost=cost,
                version=self._version,
            )
        return ServedResult(
            seq=request.seq,
            query_class=request.query_class,
            answer=answer,
            from_cache=from_cache,
            latency=finish - request.submit_time,
            version=self._version,
            cost=cost,
        )

    def advance(self, to: float) -> None:
        """Advance the simulated clock (no-op when ``to`` is in the past).

        Lets a workload replay space admissions out in time, which is
        what makes ``drain(mode="event")`` diverge from batch order.
        """
        self._clock = max(self._clock, float(to))

    def query(
        self,
        query_class: str,
        params: dict | None = None,
        client: str = "anon",
        priority: int = DEFAULT_PRIORITY,
    ) -> ServedResult:
        """Submit one query and drain immediately (convenience path)."""
        seq = self.submit(
            query_class, params, client=client, priority=priority
        )
        return self.drain()[seq]

    def _execute(
        self, request: QueryRequest, query: object
    ) -> tuple[object, float, bool]:
        """(answer, simulated cost, from_cache) for one dispatch."""
        key = None
        if request.cacheable:
            key = cache_key(self._version, request.query_class, request.params)
            entry = self._cache.get(key, now=self._clock)
            if entry is not None:
                return entry.answer, self._hit_cost, True
        program = self._program(request.query_class)
        result = self._engine.run(program, query)
        cost = run_cost(result.metrics)
        self._class_stats(request.query_class).record_run(result.metrics)
        if key is not None:
            self._cache.put(
                key,
                CacheEntry(
                    answer=result.answer,
                    version=self._version,
                    query_class=request.query_class,
                    stored_at=self._clock,
                    cost=cost,
                    params=dict(request.params),
                ),
            )
        return result.answer, cost, False

    # ------------------------------------------------------------------
    # Standing queries
    # ------------------------------------------------------------------
    def register_standing(
        self,
        name: str,
        query_class: str,
        params: dict | None = None,
    ) -> object:
        """Register a query the service keeps warm across mutations.

        Runs it cold once with ``keep_state=True`` and returns the
        answer; every later ``apply_updates`` batch repairs it through
        ``run_incremental``. The program must implement
        ``on_graph_update`` (sssp, bfs, cc and kcore do; kcore also
        handles the non-monotone insertion arm via ``repair_partial``).
        """
        if name in self._standing:
            raise ServiceError(f"standing query {name!r} already registered")
        params = dict(params or {})
        query = build_query(query_class, **params)
        program = self._program(query_class)
        from repro.core.pie import PIEProgram

        if type(program).on_graph_update is PIEProgram.on_graph_update:
            raise ServiceError(
                f"cannot register standing query {name!r}: program "
                f"{query_class!r} does not implement on_graph_update, so "
                "its answer cannot be repaired incrementally"
            )
        mark = _work_mark(program)
        result = self._engine.run(program, query, keep_state=True)
        lane, start = self._lanes.start(self._clock)
        self._lanes.occupy(lane, start + run_cost(result.metrics))
        self._clock = max(self._clock, self._lanes.horizon)
        if self._tracer is not None:
            self._tracer.svc_standing(
                name,
                query_class,
                start=start,
                finish=start + run_cost(result.metrics),
            )
        stats = StandingStats(
            name=name,
            query_class=query_class,
            cold_work=_work_since(program, mark),
        )
        self._standing[name] = StandingQuery(
            name=name,
            query_class=query_class,
            params=params,
            query=query,
            program=program,
            state=result.state,
            answer=result.answer,
            stats=stats,
        )
        self._seed_cache(self._standing[name], run_cost(result.metrics))
        return result.answer

    def standing_answer(self, name: str) -> object:
        """The current (maintained) answer of a standing query."""
        try:
            return self._standing[name].answer
        except KeyError:
            raise ServiceError(
                f"unknown standing query {name!r}; registered: "
                f"{sorted(self._standing)}"
            ) from None

    def standing_queries(self) -> list[str]:
        """Names of all registered standing queries."""
        return sorted(self._standing)

    def _seed_cache(self, standing: StandingQuery, cost: float) -> None:
        """Warm the cache at the current version with a standing answer."""
        try:
            key = cache_key(
                self._version, standing.query_class, standing.params
            )
        except Uncacheable:
            return
        self._cache.put(
            key,
            CacheEntry(
                answer=standing.answer,
                version=self._version,
                query_class=standing.query_class,
                stored_at=self._clock,
                cost=cost,
                params=dict(standing.params),
            ),
        )

    # ------------------------------------------------------------------
    # Mutation path
    # ------------------------------------------------------------------
    def apply_updates(
        self,
        edges=(),
        verify: bool = False,
        deletes=(),
        reweights=(),
    ) -> UpdateOutcome:
        """Apply one mixed ΔG batch; repair standing answers.

        ``edges`` holds insertions (:class:`EdgeInsert`,
        ``(src, dst[, weight[, label]])`` tuples, or any tagged delta-op
        form), ``deletes`` holds ``(src, dst)`` pairs or
        :class:`EdgeDelete`, and ``reweights`` holds
        ``(src, dst, weight)`` triples or :class:`EdgeReweight`. The
        batch is routed into the fragments exactly once; every standing
        query is then repaired via ``run_incremental`` on the shared
        routing — its program decides per op whether to resume
        monotonically or enter the non-monotone repair path. With
        ``verify=True`` each repaired answer is audited against a fresh
        full recomputation (byte-identical or the report flags a
        mismatch) — the audit runs off the service clock.
        """
        delta = self._as_delta(edges, deletes, reweights)
        drained = self.drain()  # pending queries observe their version
        update_start = self._clock
        self._mutate_graph(delta)
        # Route through the engine so process-backend workers replay
        # the same fragment mutations (effect sync happens once here,
        # then every standing repair reuses `touched`).
        touched = self._engine.apply_delta(delta)
        self._version += 1
        invalidated = self._cache.invalidate_before(self._version)
        outcome = UpdateOutcome(
            version=self._version,
            edges=delta.inserts,
            invalidated=invalidated,
            deletes=delta.deletes,
            reweights=delta.reweights,
            drained=drained,
        )
        for name in sorted(self._standing):
            standing = self._standing[name]
            mark = _work_mark(standing.program)
            result = self._engine.run_incremental(
                standing.program,
                standing.query,
                standing.state,
                delta,
                touched=touched,
            )
            standing.state = result.state
            standing.answer = result.answer
            stats = standing.stats
            stats.repairs += 1
            work = _work_since(standing.program, mark)
            if work is not None:
                stats.incremental_work += work
            repair_cost = run_cost(result.metrics)
            stats.incremental_time += repair_cost
            self._clock += repair_cost
            self._seed_cache(standing, repair_cost)
            outcome.repaired[name] = result.answer
            if verify:
                outcome.verified[name] = self._verify_standing(standing)
        outcome.rewarmed = self._rewarm()
        self._updates.batches += 1
        self._updates.edges += delta.inserts
        self._updates.deletes += delta.deletes
        self._updates.reweights += delta.reweights
        self._updates.rewarmed += outcome.rewarmed
        if self._tracer is not None:
            self._tracer.svc_update(
                version=self._version,
                inserts=delta.inserts,
                deletes=delta.deletes,
                reweights=delta.reweights,
                invalidated=invalidated,
                start=update_start,
                finish=self._clock,
                repaired=sorted(outcome.repaired),
            )
        return outcome

    def _mutate_graph(self, delta: GraphDelta) -> None:
        """Mirror the delta onto the session's master graph."""
        graph = self.session.graph
        for op in delta:
            try:
                if op.kind == "insert":
                    graph.add_edge(op.src, op.dst, op.weight, op.label)
                elif op.kind == "delete":
                    graph.remove_edge(op.src, op.dst)
                else:
                    label = (
                        graph.edge_label(op.src, op.dst)
                        if graph.has_edge(op.src, op.dst)
                        else None
                    )
                    graph.add_edge(op.src, op.dst, op.weight, label)
            except GraphError as exc:
                raise ProgramError(
                    f"cannot apply delta op {op.kind} "
                    f"{op.src!r}->{op.dst!r}: {exc}"
                ) from exc

    def _rewarm(self) -> int:
        """Recompute the hottest invalidated entries at the new version.

        Evicted-entry hotness (lookup hits) picks the queries repeat
        clients are most likely to ask again; each re-runs through the
        ordinary query path and lands back in the cache so the next
        lookup hits. Entries the standing-query repair already re-seeded
        don't need (and don't consume) a re-warm slot — the budget is
        ``rewarm_hottest`` *recomputations*, walked in hotness order.
        """
        rewarmed = 0
        for entry in self._cache.hottest_invalidated():
            if rewarmed >= self._rewarm_hottest:
                break
            try:
                key = cache_key(self._version, entry.query_class, entry.params)
            except Uncacheable:
                continue
            if self._cache.contains(key):
                continue
            self.query(entry.query_class, entry.params, client="rewarm")
            rewarmed += 1
        return rewarmed

    def _verify_standing(self, standing: StandingQuery) -> bool:
        """Audit one standing answer against a fresh full run."""
        program = self._program(standing.query_class)
        mark = _work_mark(program)
        full = self._engine.run(program, standing.query)
        stats = standing.stats
        stats.verified_batches += 1
        work = _work_since(program, mark)
        if work is not None:
            stats.full_work += work
        stats.full_time += run_cost(full.metrics)
        identical = canonical_answer_bytes(
            standing.answer
        ) == canonical_answer_bytes(full.answer)
        if not identical:
            stats.mismatches += 1
        return identical

    @staticmethod
    def _as_delta(edges, deletes, reweights) -> GraphDelta:
        """One mixed :class:`GraphDelta` from the three op sequences."""
        ops = list(GraphDelta.coerce(list(edges)).ops)
        for item in deletes:
            if isinstance(item, EdgeDelete):
                ops.append(item)
            else:
                src, dst, *_ = item
                ops.append(EdgeDelete(src=src, dst=dst))
        for item in reweights:
            if isinstance(item, EdgeReweight):
                ops.append(item)
            else:
                src, dst, weight, *_ = item
                ops.append(
                    EdgeReweight(src=src, dst=dst, weight=float(weight))
                )
        return GraphDelta(ops=tuple(ops))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> ServiceReport:
        """Snapshot of the service's lifetime metrics."""
        cache = self._cache.stats.as_dict()
        cache["size"] = len(self._cache)
        cache["capacity"] = self._cache.capacity
        cache["ttl"] = self._cache.ttl
        return ServiceReport(
            graph_version=self._version,
            simulated_time=self._clock,
            num_workers=self.session.num_workers,
            queue={
                "capacity": self._queue.capacity,
                "concurrency": self._lanes.concurrency,
                "depth": self._queue.depth,
                "max_depth": self._queue.max_depth,
                "rejected": self._queue.rejected,
            },
            cache=cache,
            classes={
                name: stats.as_dict()
                for name, stats in sorted(self._classes.items())
            },
            standing=[
                self._standing[name].stats.as_dict()
                for name in sorted(self._standing)
            ],
            updates=self._updates.as_dict(),
        )

    # ------------------------------------------------------------------
    def _class_stats(self, query_class: str) -> ClassStats:
        if query_class not in self._classes:
            self._classes[query_class] = ClassStats()
        return self._classes[query_class]

    def _program(self, query_class: str):
        kwargs = dict(self._program_kwargs.get(query_class, {}))
        if query_class == "pagerank":
            kwargs.setdefault(
                "total_vertices", self.session.graph.num_vertices
            )
        return get_program(query_class, **kwargs)
