"""The query-serving layer in front of the GRAPE engine.

* :mod:`service` — :class:`GrapeService`: versioned graph handle, many
  logical clients, standing queries maintained by IncEval;
* :mod:`scheduler` — bounded admission queue, priorities, simulated
  worker lanes (backpressure via
  :class:`~repro.errors.ServiceOverloadedError`);
* :mod:`cache` — versioned result cache (LRU + TTL, invalidated on
  mutation);
* :mod:`metrics` — deterministic :class:`ServiceReport` (latency
  percentiles from simulated time, cache traffic, ΔG work ratios);
* :mod:`trace` — JSON workload traces and their replay
  (``grape serve``);
* :mod:`fleet` — :class:`FleetRouter`: N replicated services behind a
  deterministic router with failover, deadlines, hedging, circuit
  breakers, stale-tagged degraded answers and checkpoint + journal
  replica recovery (``grape serve --replicas``).
"""

from repro.service.cache import ResultCache, cache_key
from repro.service.fleet import (
    FleetReport,
    FleetResult,
    FleetRouter,
    build_fleet,
    default_chaos_plan,
    replay_fleet_trace,
)
from repro.service.metrics import ServiceReport, percentile, run_cost
from repro.service.scheduler import DEFAULT_PRIORITY, QueryRequest
from repro.service.service import (
    GrapeService,
    ServedResult,
    UpdateOutcome,
    canonical_answer_bytes,
)
from repro.service.trace import build_service, load_trace, replay_trace

__all__ = [
    "GrapeService",
    "ServedResult",
    "UpdateOutcome",
    "ResultCache",
    "ServiceReport",
    "QueryRequest",
    "DEFAULT_PRIORITY",
    "FleetRouter",
    "FleetReport",
    "FleetResult",
    "build_fleet",
    "default_chaos_plan",
    "replay_fleet_trace",
    "cache_key",
    "percentile",
    "run_cost",
    "canonical_answer_bytes",
    "build_service",
    "load_trace",
    "replay_trace",
]
