"""Workload traces: replayable JSON mixes of queries and updates.

A trace is one JSON object::

    {
      "graph": "road:10x10",            // generator spec (graph_from_spec)
      "workers": 4,
      "partition": "hash",
      "service": {"max_pending": 32, "concurrency": 2},
      "standing": [
        {"name": "hub-sssp", "class": "sssp", "params": {"source": 0}}
      ],
      "ops": [
        {"op": "query", "class": "sssp", "params": {"source": 0},
         "client": "c1", "priority": 2, "repeat": 3, "at": 0.25},
        {"op": "drain"},
        {"op": "update", "edges": [[0, 57, 0.5]],
         "deletes": [[3, 4]], "reweights": [[5, 6, 2.5]],
         "verify": true}
      ]
    }

An update op carries any mix of ``edges`` (insertions), ``deletes``
and ``reweights`` — at least one must be non-empty.

``replay_trace`` drives a :class:`~repro.service.service.GrapeService`
through the ops and returns the service plus its final report. Shed
requests (queue overload) are recorded in the report, not raised — a
trace is allowed to probe the backpressure path on purpose.
"""

from __future__ import annotations

import json

from repro.errors import GrapeError, ServiceOverloadedError
from repro.graph.generators import graph_from_spec
from repro.service.metrics import ServiceReport
from repro.service.scheduler import DEFAULT_PRIORITY
from repro.service.service import GrapeService

_KNOWN_OPS = {"query", "drain", "update"}


def load_trace(path: str) -> dict:
    """Read and structurally validate a workload trace file."""
    try:
        with open(path, encoding="utf-8") as fh:
            trace = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise GrapeError(f"cannot read workload trace {path}: {exc}")
    if not isinstance(trace, dict) or "ops" not in trace:
        raise GrapeError(
            f"workload trace {path} must be a JSON object with an 'ops' list"
        )
    for idx, op in enumerate(trace["ops"]):
        kind = op.get("op")
        if kind not in _KNOWN_OPS:
            raise GrapeError(
                f"trace op #{idx} has unknown kind {kind!r}; "
                f"expected one of {sorted(_KNOWN_OPS)}"
            )
        if kind == "query" and "class" not in op:
            raise GrapeError(f"trace query op #{idx} needs a 'class'")
        if kind == "update" and not (
            op.get("edges") or op.get("deletes") or op.get("reweights")
        ):
            raise GrapeError(
                f"trace update op #{idx} needs at least one of "
                "'edges', 'deletes' or 'reweights'"
            )
    return trace


def build_service(
    trace: dict,
    graph_spec: str | None = None,
    tracer=None,
    backend: str = "simulated",
    store: str | None = None,
) -> GrapeService:
    """Construct the service a trace describes (graph, partition, knobs).

    ``store`` overrides the fragment storage backend; the trace's own
    optional ``"store"`` key applies otherwise.
    """
    from repro.engineapi.session import Session

    spec = graph_spec or trace.get("graph")
    if not spec:
        raise GrapeError(
            "workload trace names no graph; add a 'graph' spec or pass one"
        )
    store = store if store is not None else trace.get("store")
    graph = graph_from_spec(spec, store=store)
    session = Session(
        graph,
        num_workers=int(trace.get("workers", 4)),
        partition=trace.get("partition", "hash"),
        tracer=tracer,
        backend=backend,
        store=store,
    )
    knobs = trace.get("service", {})
    return GrapeService(
        session,
        max_pending=int(knobs.get("max_pending", 64)),
        concurrency=int(knobs.get("concurrency", 2)),
        cache_capacity=int(knobs.get("cache_capacity", 256)),
        cache_ttl=knobs.get("cache_ttl"),
        rewarm_hottest=int(knobs.get("rewarm_hottest", 0)),
    )


def replay_trace(
    trace: dict,
    service: GrapeService | None = None,
    graph_spec: str | None = None,
    max_queries: int | None = None,
    verify: bool | None = None,
    tracer=None,
    mode: str = "batch",
    backend: str = "simulated",
    store: str | None = None,
) -> tuple[GrapeService, ServiceReport]:
    """Replay a trace and return ``(service, final report)``.

    ``max_queries`` stops submitting after that many query ops (the
    smoke-test knob); remaining update ops are skipped too so the
    truncated replay stays cheap. ``verify`` overrides every update
    op's own ``verify`` flag when not None. ``tracer`` (ignored when a
    pre-built ``service`` is passed) records the replay for export.
    ``mode`` selects the drain discipline — ``"batch"`` (default)
    sorts each backlog purely by priority, ``"event"`` interleaves
    admissions with lane completions; a query op's optional ``"at"``
    advances the service clock before submitting, which is what gives
    requests distinct arrival times for event mode to honor.
    ``backend`` (ignored when a pre-built ``service`` is passed) picks
    the execution backend every dispatched engine run uses; ``store``
    likewise selects the fragment storage backend.
    """
    if service is None:
        service = build_service(
            trace, graph_spec, tracer=tracer, backend=backend, store=store
        )
    for standing in trace.get("standing", []):
        service.register_standing(
            standing["name"],
            standing["class"],
            standing.get("params"),
        )
    queries_sent = 0
    for op in trace["ops"]:
        kind = op["op"]
        if kind == "query":
            if "at" in op:
                service.advance(float(op["at"]))
            for _ in range(int(op.get("repeat", 1))):
                if max_queries is not None and queries_sent >= max_queries:
                    break
                queries_sent += 1
                try:
                    service.submit(
                        op["class"],
                        op.get("params"),
                        client=op.get("client", "trace"),
                        priority=int(op.get("priority", DEFAULT_PRIORITY)),
                    )
                except ServiceOverloadedError:
                    pass  # shed; counted in the report
        elif kind == "drain":
            service.drain(mode=mode)
        elif kind == "update":
            if max_queries is not None and queries_sent >= max_queries:
                continue
            service.apply_updates(
                op.get("edges", ()),
                verify=op.get("verify", True) if verify is None else verify,
                deletes=op.get("deletes", ()),
                reweights=op.get("reweights", ()),
            )
    service.drain(mode=mode)
    return service, service.report()
