"""Admission control and scheduling for the query-serving layer.

The scheduler is deliberately simple and fully deterministic:

* a **bounded admission queue** — submissions beyond ``capacity`` are
  shed with a typed :class:`~repro.errors.ServiceOverloadedError`
  (backpressure instead of unbounded memory growth);
* **per-class priorities** — each request carries a small integer
  priority (lower = more urgent, default :data:`DEFAULT_PRIORITY`);
  dispatch order is ``(priority, seq)``, i.e. strict priority with FIFO
  within a class;
* **bounded concurrency** — :class:`LaneClock` models ``concurrency``
  simulated worker lanes; a drained request starts on the earliest free
  lane, so latency = queue wait + run cost in simulated seconds.

All times are simulated (derived from the engine's cost model), never
wall-clock, so every latency percentile in the report is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ServiceOverloadedError

#: Priority assigned when a client does not ask for one (lower = sooner).
DEFAULT_PRIORITY = 5


@dataclass
class QueryRequest:
    """One admitted query, waiting to be dispatched."""

    seq: int
    query_class: str
    params: dict
    client: str = "anon"
    priority: int = DEFAULT_PRIORITY
    #: Simulated service time at admission (latency is measured from here).
    submit_time: float = 0.0
    #: False when the params cannot be canonicalized (cache bypassed).
    cacheable: bool = True

    @property
    def order_key(self) -> tuple[int, int]:
        """Dispatch order: strict priority, FIFO within a priority."""
        return (self.priority, self.seq)


@dataclass
class LaneClock:
    """``concurrency`` simulated worker lanes with per-lane free times."""

    concurrency: int
    free_at: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )
        if not self.free_at:
            self.free_at = [0.0] * self.concurrency

    def start(self, ready_at: float) -> tuple[int, float]:
        """Earliest lane and start time for work ready at ``ready_at``."""
        lane = min(range(len(self.free_at)), key=self.free_at.__getitem__)
        return lane, max(self.free_at[lane], ready_at)

    def occupy(self, lane: int, until: float) -> None:
        """Mark ``lane`` busy until simulated time ``until``."""
        self.free_at[lane] = until

    def busy_at(self, now: float) -> int:
        """Lanes still executing at simulated time ``now``.

        Admission control counts these toward the service's load: a
        query on a lane consumes capacity just as surely as one waiting
        in the queue.
        """
        return sum(1 for free in self.free_at if free > now)

    @property
    def horizon(self) -> float:
        """When every lane is free again (the drain's finish time)."""
        return max(self.free_at)


class AdmissionQueue:
    """Bounded priority queue in front of the service."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._pending: list[QueryRequest] = []
        self._next_seq = 0
        #: High-water mark of the queue depth (for the report).
        self.max_depth = 0
        #: Requests shed by backpressure.
        self.rejected = 0

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Requests currently waiting."""
        return len(self._pending)

    def next_seq(self) -> int:
        """Allocate the next admission sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def admit(self, request: QueryRequest, in_flight: int = 0) -> None:
        """Enqueue ``request`` or shed it with a typed overload error.

        ``in_flight`` counts requests already dispatched onto lanes but
        not yet finished at submit time; they occupy service capacity
        exactly like queued ones, so the bound applies to the sum.
        """
        if len(self._pending) + in_flight >= self.capacity:
            self.rejected += 1
            raise ServiceOverloadedError(
                f"admission queue full ({len(self._pending)} pending + "
                f"{in_flight} in flight / {self.capacity}); request "
                f"{request.query_class!r} from {request.client!r} shed — "
                "drain the service or raise max_pending",
                queue_depth=len(self._pending) + in_flight,
                capacity=self.capacity,
            )
        self._pending.append(request)
        self.max_depth = max(self.max_depth, len(self._pending))

    def take_all(self) -> list[QueryRequest]:
        """Remove and return every pending request in dispatch order."""
        batch = sorted(self._pending, key=lambda r: r.order_key)
        self._pending.clear()
        return batch
