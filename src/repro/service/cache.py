"""Versioned result cache: O(1) answers for repeated queries.

Entries are keyed on ``(graph_version, query_class, canonical params)``.
The graph version is monotonically bumped by every mutation batch, so an
entry can never serve a stale answer: a lookup at the current version
misses by construction after any update, and superseded entries are
dropped eagerly by :meth:`ResultCache.invalidate_before`. Within a
version, eviction is LRU with an optional TTL measured in *simulated*
service time (deterministic — no wall clocks anywhere in the serving
layer).

Query parameters are canonicalized structurally (dicts order-free,
lists/sets frozen); values the canonicalizer does not understand (e.g. a
pattern :class:`~repro.graph.digraph.Graph`) raise :class:`Uncacheable`
and the service simply runs those queries uncached.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable


class Uncacheable(Exception):
    """A query parameter value has no canonical cache form."""


_SCALARS = (str, int, float, bool, bytes, type(None))


def freeze(value: object) -> Hashable:
    """Canonical hashable form of a query parameter value.

    Dicts canonicalize order-free; lists/tuples keep order; sets sort.
    Unknown types raise :class:`Uncacheable` rather than guessing.
    """
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, dict):
        items = tuple(
            (k, freeze(v)) for k, v in sorted(value.items(), key=repr)
        )
        return ("dict", items)
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(freeze(v) for v in value))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted((freeze(v) for v in value), key=repr)))
    raise Uncacheable(f"cannot canonicalize {type(value).__name__} value")


def cache_key(
    version: int, query_class: str, params: dict | None
) -> tuple:
    """The cache key for one query at one graph version."""
    return (version, query_class, freeze(params or {}))


@dataclass
class CacheEntry:
    """One cached assembled answer with its provenance."""

    answer: object
    version: int
    query_class: str
    #: Simulated service time the entry was stored at (TTL anchor).
    stored_at: float
    #: Simulated cost of the engine run that produced the answer.
    cost: float
    #: Original query params (needed to re-run the query when the entry
    #: is selected for re-warming after a version bump); None = unknown.
    params: dict | None = None
    #: Lookup hits served by this entry (re-warm hotness signal).
    hits: int = 0


@dataclass
class CacheStats:
    """Counter snapshot for the service report."""

    hits: int = 0
    misses: int = 0
    evicted_lru: int = 0
    expired_ttl: int = 0
    invalidated: int = 0
    uncacheable: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache was never consulted)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        """Counters plus the derived hit rate."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evicted_lru": self.evicted_lru,
            "expired_ttl": self.expired_ttl,
            "invalidated": self.invalidated,
            "uncacheable": self.uncacheable,
        }


class ResultCache:
    """LRU+TTL cache of assembled answers, keyed by graph version.

    Args:
        capacity: maximum number of entries (LRU beyond it).
        ttl: entry lifetime in simulated seconds (None = no expiry).
    """

    def __init__(self, capacity: int = 256, ttl: float | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.ttl = ttl
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple, CacheEntry] = OrderedDict()
        self._last_invalidated: list[CacheEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def contains(self, key: tuple) -> bool:
        """Whether ``key`` is present (no stats or LRU side effects)."""
        return key in self._entries

    # ------------------------------------------------------------------
    def get(self, key: tuple, now: float) -> CacheEntry | None:
        """The live entry under ``key``, refreshing its LRU position."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if self.ttl is not None and now - entry.stored_at > self.ttl:
            del self._entries[key]
            self.stats.expired_ttl += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        entry.hits += 1
        return entry

    def put(self, key: tuple, entry: CacheEntry) -> None:
        """Store ``entry``, evicting the LRU tail beyond capacity."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evicted_lru += 1

    def invalidate_before(self, version: int) -> int:
        """Drop every entry cached at a graph version below ``version``.

        Called by the service right after a mutation batch bumps the
        version: the keys could never match again, so holding them would
        only displace live entries. The dropped entries are stashed so
        :meth:`hottest_invalidated` can pick re-warm candidates.
        """
        stale = [
            key
            for key, entry in self._entries.items()
            if entry.version < version
        ]
        self._last_invalidated = [self._entries[key] for key in stale]
        for key in stale:
            del self._entries[key]
        self.stats.invalidated += len(stale)
        return len(stale)

    def hottest_invalidated(self, n: int | None = None) -> list[CacheEntry]:
        """The most-hit entries dropped by the last invalidation.

        Only entries that recorded their query params (and at least one
        hit — cold entries are not worth pre-paying for) qualify; ties
        break toward most recently used (insertion order is LRU order).
        ``n`` caps the list (None = all qualifying entries).
        """
        candidates = [
            entry
            for entry in self._last_invalidated
            if entry.params is not None and entry.hits > 0
        ]
        candidates.sort(key=lambda entry: entry.hits, reverse=True)
        return candidates if n is None else candidates[:n]

    def clear(self) -> None:
        """Drop everything (stats are kept)."""
        self._entries.clear()
