"""Graph patterns with designated nodes ``x`` and ``y``."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.errors import QueryError
from repro.graph.digraph import Graph

VertexId = Hashable


@dataclass
class Pattern:
    """A labeled pattern graph ``Q(x, y)`` with two designated nodes.

    Pattern vertices are arbitrary ids with labels constraining the data
    vertices they may match (None = wildcard); pattern edges may carry
    labels constraining data edge labels. ``x`` is the pivot the parallel
    matcher anchors ownership on.
    """

    graph: Graph = field(default_factory=lambda: Graph(directed=True))
    x: VertexId = "x"
    y: VertexId = "y"

    def vertex(self, vid: VertexId, label: str | None = None,
               **props: object) -> "Pattern":
        """Add a pattern vertex (chainable)."""
        self.graph.add_vertex(vid, label, **props)
        return self

    def edge(
        self, src: VertexId, dst: VertexId, label: str | None = None
    ) -> "Pattern":
        """Add a pattern edge (chainable)."""
        self.graph.add_edge(src, dst, label=label)
        return self

    def validate(self) -> None:
        """Raise QueryError unless both designated nodes exist."""
        if self.x not in self.graph:
            raise QueryError(f"designated node x={self.x!r} not in pattern")
        if self.y not in self.graph:
            raise QueryError(f"designated node y={self.y!r} not in pattern")

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self.graph.num_vertices

    def __repr__(self) -> str:
        return (
            f"<Pattern |V|={self.graph.num_vertices} "
            f"|E|={self.graph.num_edges} x={self.x!r} y={self.y!r}>"
        )
