"""GPAR rules: pattern antecedent, predicate consequent, quantifiers.

Beyond plain subgraph patterns, the demo's Example 2 needs *quantified*
conditions ("at least 80% of the people followed by x recommend the
phone", "no one rates it badly"). A :class:`Quantifier` expresses such a
ratio constraint over the designated person's neighborhood; a
:class:`GPAR` bundles pattern + quantifiers + consequent predicate and
defines support and confidence the usual association-rule way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.graph.digraph import Graph
from repro.gpar.pattern import Pattern

VertexId = Hashable


@dataclass(frozen=True)
class Quantifier:
    """A ratio constraint over ``x``'s out-neighborhood.

    Among the out-neighbors of the candidate ``x`` reached by edges
    labeled ``over_label`` (e.g. *follow*), the fraction that have an
    edge labeled ``edge_label`` to the candidate ``y`` must be
    ``>= at_least`` and ``<= at_most``. ``at_most=0.0`` expresses
    negation ("no one rates it badly"); ``at_least=0.8`` expresses the
    80% rule.
    """

    over_label: str
    edge_label: str
    at_least: float = 0.0
    at_most: float = 1.0

    def holds(self, graph: Graph, x: VertexId, y: VertexId) -> bool:
        """Whether the ratio constraint holds for ``(x, y)`` in ``graph``."""
        peers = [
            e.dst for e in graph.out_edges(x) if e.label == self.over_label
        ]
        if not peers:
            return False  # vacuous neighborhoods don't trigger marketing
        hits = sum(
            1 for p in peers if graph.has_edge(p, y)
            and graph.edge_label(p, y) == self.edge_label
        )
        ratio = hits / len(peers)
        return self.at_least <= ratio <= self.at_most


@dataclass
class GPAR:
    """``Q(x, y) AND quantifiers => p(x, y)``."""

    name: str
    pattern: Pattern
    consequent_label: str  # the predicate p: an edge label x -> y
    quantifiers: tuple[Quantifier, ...] = field(default_factory=tuple)

    def antecedent_holds(
        self, graph: Graph, x: VertexId, y: VertexId
    ) -> bool:
        """Quantifier part of the antecedent (pattern checked by matcher)."""
        return all(q.holds(graph, x, y) for q in self.quantifiers)

    def consequent_holds(
        self, graph: Graph, x: VertexId, y: VertexId
    ) -> bool:
        """Whether ``p(x, y)`` holds (the consequent edge exists)."""
        return (
            graph.has_edge(x, y)
            and graph.edge_label(x, y) == self.consequent_label
        )

    def support_confidence(
        self, graph: Graph, candidates: set[tuple[VertexId, VertexId]]
    ) -> tuple[int, float]:
        """(support, confidence) over antecedent-satisfying pairs.

        Support = #pairs satisfying antecedent AND consequent;
        confidence = support / #pairs satisfying the antecedent.
        """
        if not candidates:
            return 0, 0.0
        positives = sum(
            1 for x, y in candidates if self.consequent_holds(graph, x, y)
        )
        return positives, positives / len(candidates)

    def __repr__(self) -> str:
        return (
            f"<GPAR {self.name!r}: Q(x,y) + {len(self.quantifiers)} "
            f"quantifiers => {self.consequent_label!r}(x,y)>"
        )
