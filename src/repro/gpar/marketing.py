"""Social-media marketing with GPARs — the demo's application (Fig. 4).

"90% of customers trust peer recommendations versus 14% who trust
advertising": given a set of GPARs, find *potential customers* — pairs
``(x, y)`` that satisfy a rule's antecedent but do not yet satisfy its
consequent — ranked by the rule's confidence on the observed data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.graph.digraph import Graph
from repro.graph.fragment import FragmentedGraph
from repro.gpar.matcher import find_rule_matches
from repro.gpar.pattern import Pattern
from repro.gpar.rule import GPAR, Quantifier
from repro.runtime.costmodel import CostModel

VertexId = Hashable


@dataclass(frozen=True)
class Recommendation:
    """One suggested (customer, product) pair."""

    customer: VertexId
    product: VertexId
    rule: str
    confidence: float


@dataclass
class MarketingCampaign:
    """Outcome of running a GPAR set over a social graph."""

    recommendations: list[Recommendation]
    rule_stats: dict[str, tuple[int, float]]  # rule -> (support, confidence)
    total_time: float = 0.0
    total_comm_mb: float = 0.0
    candidates_checked: int = 0

    def top(self, k: int) -> list[Recommendation]:
        """The ``k`` highest-confidence recommendations."""
        return self.recommendations[:k]


def example2_rule(
    product_label: str = "product",
    min_recommend_ratio: float = 0.8,
) -> GPAR:
    """The demo's Example 2 GPAR, structurally.

    Pattern: person ``x`` follows some person ``z`` who recommends
    product ``y``. Quantifiers: at least ``min_recommend_ratio`` of
    ``x``'s followees recommend ``y``; none rates ``y`` badly.
    Consequent: ``buy(x, y)``.
    """
    pattern = Pattern(x="x", y="y")
    pattern.vertex("x", "person")
    pattern.vertex("z", "person")
    pattern.vertex("y", product_label)
    pattern.edge("x", "z", label="follow")
    pattern.edge("z", "y", label="recommend")
    return GPAR(
        name="example2-peer-recommendation",
        pattern=pattern,
        consequent_label="buy",
        quantifiers=(
            Quantifier(
                over_label="follow",
                edge_label="recommend",
                at_least=min_recommend_ratio,
            ),
            Quantifier(
                over_label="follow",
                edge_label="rate_bad",
                at_most=0.0,
            ),
        ),
    )


def find_potential_customers(
    graph: Graph,
    fragmented: FragmentedGraph,
    rules: Sequence[GPAR],
    cost_model: CostModel | None = None,
) -> MarketingCampaign:
    """Run every rule; return not-yet-buyers ranked by rule confidence."""
    recommendations: list[Recommendation] = []
    stats: dict[str, tuple[int, float]] = {}
    total_time = 0.0
    total_mb = 0.0
    checked = 0
    for rule in rules:
        pairs, result = find_rule_matches(
            graph, fragmented, rule, cost_model=cost_model
        )
        total_time += result.total_time
        total_mb += result.metrics.communication_mb
        checked += len(pairs)
        support, confidence = rule.support_confidence(graph, pairs)
        stats[rule.name] = (support, confidence)
        for x, y in pairs:
            if not rule.consequent_holds(graph, x, y):
                recommendations.append(
                    Recommendation(
                        customer=x,
                        product=y,
                        rule=rule.name,
                        confidence=confidence,
                    )
                )
    recommendations.sort(
        key=lambda r: (-r.confidence, str(r.customer), str(r.product))
    )
    return MarketingCampaign(
        recommendations=recommendations,
        rule_stats=stats,
        total_time=total_time,
        total_comm_mb=total_mb,
        candidates_checked=checked,
    )
