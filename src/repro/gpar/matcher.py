"""Parallel GPAR matching on top of the SubIso PIE program.

"GRAPE efficiently finds potential customers ... by parallelizing PIE
programs for subgraph isomorphism" (Section 3). The matcher:

1. runs :class:`~repro.algorithms.subiso.SubIsoProgram` with the rule's
   pattern, pivot ``x``, over d-hop-expanded fragments;
2. projects embeddings to the designated pair ``(x, y)``;
3. filters pairs through the rule's quantifiers (done per owning
   fragment's local expanded graph — quantifiers only inspect ``x``'s
   1-hop neighborhood, which d-hop expansion already ships).
"""

from __future__ import annotations

from typing import Hashable

from repro.algorithms.subiso import SubIsoProgram, SubIsoQuery
from repro.core.engine import GrapeEngine, GrapeResult
from repro.graph.digraph import Graph
from repro.graph.fragment import FragmentedGraph, expand_fragments
from repro.gpar.pattern import Pattern
from repro.gpar.rule import GPAR
from repro.runtime.costmodel import CostModel

VertexId = Hashable
Pair = tuple[VertexId, VertexId]


def match_pattern(
    graph: Graph,
    fragmented: FragmentedGraph,
    pattern: Pattern,
    cost_model: CostModel | None = None,
    max_matches: int | None = None,
) -> tuple[set[Pair], GrapeResult]:
    """All (x, y) pairs matching ``pattern`` — parallel SubIso.

    Returns the designated-pair projection of the embeddings plus the
    engine result (for metering scalability, Fig. 4's claim).
    """
    pattern.validate()
    query = SubIsoQuery(
        pattern=pattern.graph, pivot=pattern.x, max_matches=max_matches
    )
    expanded = expand_fragments(graph, fragmented, query.radius())
    engine = GrapeEngine(expanded, cost_model=cost_model)
    result = engine.run(SubIsoProgram(), query)
    pairs = {(m[pattern.x], m[pattern.y]) for m in result.answer}
    return pairs, result


def find_rule_matches(
    graph: Graph,
    fragmented: FragmentedGraph,
    rule: GPAR,
    cost_model: CostModel | None = None,
) -> tuple[set[Pair], GrapeResult]:
    """Pairs satisfying the rule's full antecedent (pattern + quantifiers)."""
    pairs, result = match_pattern(
        graph, fragmented, rule.pattern, cost_model=cost_model
    )
    satisfied = {
        (x, y) for x, y in pairs if rule.antecedent_holds(graph, x, y)
    }
    return satisfied, result
