"""Graph Pattern Association Rules — the demo's marketing application.

A GPAR ``Q(x, y) => p(x, y)`` [Fan et al., PVLDB'15] extends association
rules with a graph pattern ``Q`` over designated nodes ``x`` (a person)
and ``y`` (typically a product): when the topological condition holds,
``x`` and ``y`` are likely associated by predicate ``p`` (e.g. *buy*).
The demo's Example 2 rule: if ≥80% of the people ``x`` follows recommend
a phone and none rates it badly, recommend the phone to ``x``.

This package provides patterns with designated nodes
(:mod:`pattern`), rules with support/confidence semantics (:mod:`rule`),
a parallel matcher built on the SubIso PIE program (:mod:`matcher`), and
the end-to-end potential-customer pipeline (:mod:`marketing`).
"""

from repro.gpar.pattern import Pattern
from repro.gpar.rule import GPAR, Quantifier
from repro.gpar.matcher import match_pattern, find_rule_matches
from repro.gpar.marketing import (
    MarketingCampaign,
    example2_rule,
    find_potential_customers,
)

__all__ = [
    "Pattern",
    "GPAR",
    "Quantifier",
    "match_pattern",
    "find_rule_matches",
    "MarketingCampaign",
    "example2_rule",
    "find_potential_customers",
]
