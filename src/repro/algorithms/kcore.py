"""PIE program for k-core decomposition (library extension).

Distributed core numbers via Montresor-style convergent H-index
estimates: every vertex starts at its degree and repeatedly lowers its
estimate to the h-index of its neighbors' estimates. Estimates only
decrease (aggregate function ``min``), so the Assurance Theorem applies
and the engine's monotonicity checker can verify every write.

* **PEval** — iterate H-index rounds to the local fixed point, treating
  mirror estimates as optimistic external values.
* **IncEval** — re-iterate only from the neighbors of mirrors whose
  estimates dropped (bounded by the affected region).
* **Assemble** — owners' final estimates are the core numbers.

Requires a *symmetric* edge set (both directions stored), since a
fragment only sees the out-edges of its owned vertices; all bundled
traversal generators satisfy this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.algorithms.sequential.kcore_seq import converge_h_index
from repro.core.aggregators import MIN
from repro.core.pie import ParamSpec, PIEProgram
from repro.core.update_params import UpdateParams
from repro.graph.fragment import Fragment

VertexId = Hashable

Partial = dict  # owned vertex -> current core estimate


@dataclass(frozen=True)
class KCoreQuery:
    """Core numbers of every vertex (no parameters)."""


class KCoreProgram(PIEProgram[KCoreQuery, Partial, dict]):
    """Convergent H-index k-core as a PIE program."""

    name = "kcore"

    def __init__(self) -> None:
        self.work_log: list[tuple[str, int, int]] = []

    def param_spec(self, query: KCoreQuery) -> ParamSpec:
        # None = "estimate unknown": the first concrete estimate wins.
        return ParamSpec(aggregator=MIN, default=None)

    def _external(self, fragment: Fragment, params: UpdateParams) -> dict:
        out = {}
        for m in fragment.mirrors:
            value = params.get(m)
            if value is not None:
                out[m] = value
        return out

    def _export(
        self, fragment: Fragment, partial: Partial, params: UpdateParams
    ) -> None:
        # Whole-border publish is deliberate: MIN.improve drops
        # non-improvements, so only genuine refinements are shipped.
        for v in fragment.inner_border:  # grape-lint: disable=GRP202
            params.improve(v, partial[v])

    def peval(
        self, fragment: Fragment, query: KCoreQuery, params: UpdateParams
    ) -> Partial:
        partial: Partial = {
            v: sum(1 for p in fragment.graph.iter_neighbors(v) if p != v)
            for v in fragment.owned
        }
        _, work = converge_h_index(
            fragment.graph, partial, external=self._external(fragment, params)
        )
        self.work_log.append(("peval", fragment.fid, work))
        self._export(fragment, partial, params)
        return partial

    def inceval(
        self,
        fragment: Fragment,
        query: KCoreQuery,
        partial: Partial,
        params: UpdateParams,
        changed: set[VertexId],
    ) -> Partial:
        dirty = {
            p
            for m in changed
            if m in fragment.graph
            for p in fragment.graph.iter_neighbors(m)
            if p in partial
        }
        external = self._external(fragment, params)
        from repro.algorithms.sequential.kcore_seq import h_index_round

        total_work = 0
        while dirty:
            changes, work = h_index_round(
                fragment.graph, partial, external=external, vertices=dirty
            )
            total_work += work
            if not changes:
                break
            partial.update(changes)
            dirty = {
                p
                for v in changes
                for p in fragment.graph.iter_neighbors(v)
                if p in partial
            }
        self.work_log.append(("inceval", fragment.fid, total_work))
        self._export(fragment, partial, params)
        return partial

    def classify_update(self, query: KCoreQuery, op) -> bool:
        """k-core's natural direction is *deletion*: estimates only drop.

        Removing an edge can only lower core numbers, so the old
        estimates stay valid upper bounds and the H-index iteration
        reconverges from them — deletions are the monotone-safe arm.
        An insertion can *raise* core numbers, which the MIN aggregator
        cannot express incrementally: unsafe, repaired by resetting the
        affected component to degree bounds. Weights never matter.
        """
        return op.kind != "insert"

    def _settle(
        self, fragment: Fragment, partial: Partial, params: UpdateParams,
        dirty: set,
    ) -> int:
        """Dirty-driven H-index rounds to the local fixed point."""
        from repro.algorithms.sequential.kcore_seq import h_index_round

        external = self._external(fragment, params)
        total_work = 0
        while dirty:
            changes, work = h_index_round(
                fragment.graph, partial, external=external, vertices=dirty
            )
            total_work += work
            if not changes:
                break
            partial.update(changes)
            dirty = {
                p
                for v in changes
                for p in fragment.graph.iter_neighbors(v)
                if p in partial
            }
        return total_work

    def on_graph_update(
        self,
        fragment: Fragment,
        query: KCoreQuery,
        partial: Partial,
        params: UpdateParams,
        delta,
    ) -> Partial:
        """ΔG hook for the safe arm: deletions (reweights are no-ops).

        Each deleted edge caps its locally-owned endpoints' estimates by
        their new degree (a core number never exceeds the degree), then
        the H-index iteration reconverges downward from the still-valid
        upper bounds.
        """
        dirty: set = set()
        for op in delta:
            if op.kind != "delete":
                continue
            for v in (op.src, op.dst):
                if v not in partial or not fragment.graph.has_vertex(v):
                    continue
                degree = sum(
                    1 for p in fragment.graph.iter_neighbors(v) if p != v
                )
                if partial[v] > degree:
                    partial[v] = degree
                dirty.add(v)
                dirty.update(
                    p
                    for p in fragment.graph.iter_neighbors(v)
                    if p in partial
                )
        work = self._settle(fragment, partial, params, dirty)
        self.work_log.append(("update", fragment.fid, work))
        self._export(fragment, partial, params)
        return partial

    def delta_seeds(
        self, fragment: Fragment, query: KCoreQuery, partial: Partial, ops
    ) -> set:
        """Both endpoints of each inserted edge (degrees are mutual)."""
        seeds: set = set()
        for op in ops:
            for v in (op.src, op.dst):
                if fragment.graph.has_vertex(v) or v in partial:
                    seeds.add(v)
        return seeds

    def repair_partial(
        self,
        fragment: Fragment,
        query: KCoreQuery,
        partial: Partial,
        params: UpdateParams,
        region: set,
    ) -> Partial:
        """Re-derive the invalidated component from degree upper bounds.

        Insertions can raise core numbers anywhere in the containing
        component, so the region (its whole local closure — the base
        :meth:`invalidated_region` over a symmetric edge set) restarts
        from each vertex's degree, exactly as PEval would, and iterates
        down. Mirror estimates in the region were reset to ``None`` and
        are treated as optimistic until the fixpoint refines them.
        """
        dirty: set = set()
        for v in region:
            if v in partial and fragment.graph.has_vertex(v):
                partial[v] = sum(
                    1 for p in fragment.graph.iter_neighbors(v) if p != v
                )
                dirty.add(v)
        work = self._settle(fragment, partial, params, dirty)
        self.work_log.append(("repair", fragment.fid, work))
        self._export(fragment, partial, params)
        return partial

    def assemble(
        self, query: KCoreQuery, partials: Sequence[Partial]
    ) -> dict[VertexId, int]:
        result: dict[VertexId, int] = {}
        for partial in partials:
            for v, estimate in partial.items():
                if v not in result or estimate < result[v]:
                    result[v] = estimate
        return result
