"""PIE program for k-core decomposition (library extension).

Distributed core numbers via Montresor-style convergent H-index
estimates: every vertex starts at its degree and repeatedly lowers its
estimate to the h-index of its neighbors' estimates. Estimates only
decrease (aggregate function ``min``), so the Assurance Theorem applies
and the engine's monotonicity checker can verify every write.

* **PEval** — iterate H-index rounds to the local fixed point, treating
  mirror estimates as optimistic external values.
* **IncEval** — re-iterate only from the neighbors of mirrors whose
  estimates dropped (bounded by the affected region).
* **Assemble** — owners' final estimates are the core numbers.

Requires a *symmetric* edge set (both directions stored), since a
fragment only sees the out-edges of its owned vertices; all bundled
traversal generators satisfy this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.algorithms.sequential.kcore_seq import converge_h_index
from repro.core.aggregators import MIN
from repro.core.pie import ParamSpec, PIEProgram
from repro.core.update_params import UpdateParams
from repro.graph.fragment import Fragment

VertexId = Hashable

Partial = dict  # owned vertex -> current core estimate


@dataclass(frozen=True)
class KCoreQuery:
    """Core numbers of every vertex (no parameters)."""


class KCoreProgram(PIEProgram[KCoreQuery, Partial, dict]):
    """Convergent H-index k-core as a PIE program."""

    name = "kcore"

    #: H-index estimates only shrink under MIN aggregation, so k-core
    #: is eligible for barrier-relaxed supersteps (grape-lint GRP6xx).
    relaxed = True

    def __init__(self) -> None:
        self.work_log: list[tuple[str, int, int]] = []

    def param_spec(self, query: KCoreQuery) -> ParamSpec:
        # None = "estimate unknown": the first concrete estimate wins.
        return ParamSpec(aggregator=MIN, default=None)

    def _external(self, fragment: Fragment, params: UpdateParams) -> dict:
        out = {}
        for m in fragment.mirrors:
            value = params.get(m)
            if value is not None:
                out[m] = value
        return out

    def _export(
        self, fragment: Fragment, partial: Partial, params: UpdateParams
    ) -> None:
        # Whole-border publish is deliberate: MIN.improve drops
        # non-improvements, so only genuine refinements are shipped.
        for v in fragment.inner_border:  # grape-lint: disable=GRP202
            params.improve(v, partial[v])

    def peval(
        self, fragment: Fragment, query: KCoreQuery, params: UpdateParams
    ) -> Partial:
        partial: Partial = {
            v: sum(1 for p in fragment.graph.iter_neighbors(v) if p != v)
            for v in fragment.owned
        }
        _, work = converge_h_index(
            fragment.graph, partial, external=self._external(fragment, params)
        )
        self.work_log.append(("peval", fragment.fid, work))
        self._export(fragment, partial, params)
        return partial

    def inceval(
        self,
        fragment: Fragment,
        query: KCoreQuery,
        partial: Partial,
        params: UpdateParams,
        changed: set[VertexId],
    ) -> Partial:
        dirty = {
            p
            for m in changed
            if m in fragment.graph
            for p in fragment.graph.iter_neighbors(m)
            if p in partial
        }
        external = self._external(fragment, params)
        from repro.algorithms.sequential.kcore_seq import h_index_round

        total_work = 0
        while dirty:
            changes, work = h_index_round(
                fragment.graph, partial, external=external, vertices=dirty
            )
            total_work += work
            if not changes:
                break
            partial.update(changes)
            dirty = {
                p
                for v in changes
                for p in fragment.graph.iter_neighbors(v)
                if p in partial
            }
        self.work_log.append(("inceval", fragment.fid, total_work))
        self._export(fragment, partial, params)
        return partial

    def classify_update(self, query: KCoreQuery, op) -> bool:
        """k-core's natural direction is *deletion*: estimates only drop.

        Removing an edge can only lower core numbers, so the old
        estimates stay valid upper bounds and the H-index iteration
        reconverges from them — deletions are the monotone-safe arm.
        An insertion can *raise* core numbers, which the MIN aggregator
        cannot express incrementally: unsafe, repaired by resetting the
        affected component to degree bounds. Weights never matter.
        """
        return op.kind != "insert"

    def _settle(
        self, fragment: Fragment, partial: Partial, params: UpdateParams,
        dirty: set,
    ) -> int:
        """Dirty-driven H-index rounds to the local fixed point."""
        from repro.algorithms.sequential.kcore_seq import h_index_round

        external = self._external(fragment, params)
        total_work = 0
        while dirty:
            changes, work = h_index_round(
                fragment.graph, partial, external=external, vertices=dirty
            )
            total_work += work
            if not changes:
                break
            partial.update(changes)
            dirty = {
                p
                for v in changes
                for p in fragment.graph.iter_neighbors(v)
                if p in partial
            }
        return total_work

    def deletion_region(
        self, fragment: Fragment, partial: Partial, params: UpdateParams,
        ops,
    ) -> tuple[dict, set]:
        """Degree-threshold triage of deletion endpoints.

        Mirrors CC's spanning-forest triage: prove most deletions
        harmless before seeding any recomputation. For each locally
        owned endpoint ``v`` with estimate ``k``:

        * ``degree < k`` — the estimate must drop at least to the
          degree bound: cap it and dirty ``v`` plus its neighbors (the
          drop can cascade).
        * ``supporters < k`` — fewer than ``k`` remaining neighbors
          hold an estimate ``>= k`` (externals default optimistic, as
          in the H-index rounds), so the next round lowers ``v``:
          dirty ``v`` alone; the settle loop spreads any cascade.
        * otherwise — at least ``k`` neighbors still support level
          ``k``, so the H-index of ``v`` is exactly ``k`` again:
          provably unaffected, no seeds (a non-core deletion yields an
          empty region and zero repair work).

        Returns ``(caps, dirty)``: estimate caps to apply and the seed
        set for the settle loop.
        """
        external = self._external(fragment, params)
        caps: dict = {}
        dirty: set = set()
        for op in ops:
            if op.kind != "delete":
                continue
            for v in (op.src, op.dst):
                if v not in partial or not fragment.graph.has_vertex(v):
                    continue
                k = caps.get(v, partial[v])
                degree = 0
                supporters = 0
                for p in fragment.graph.iter_neighbors(v):
                    if p == v:
                        continue
                    degree += 1
                    est = partial.get(p)
                    if est is None:
                        est = external.get(p, float("inf"))
                    if est >= k:
                        supporters += 1
                if degree < k:
                    caps[v] = degree
                    dirty.add(v)
                    dirty.update(
                        p
                        for p in fragment.graph.iter_neighbors(v)
                        if p in partial
                    )
                elif supporters < k:
                    dirty.add(v)
        return caps, dirty

    def on_graph_update(
        self,
        fragment: Fragment,
        query: KCoreQuery,
        partial: Partial,
        params: UpdateParams,
        delta,
    ) -> Partial:
        """ΔG hook for the safe arm: deletions (reweights are no-ops).

        :meth:`deletion_region` triages each deleted edge's endpoints —
        capping estimates that fell below the degree bound and seeding
        only the vertices that can actually drop — then the H-index
        iteration reconverges downward from the still-valid upper
        bounds.
        """
        caps, dirty = self.deletion_region(fragment, partial, params, delta)
        for v, cap in caps.items():
            if partial[v] > cap:
                partial[v] = cap
        work = self._settle(fragment, partial, params, dirty)
        self.work_log.append(("update", fragment.fid, work))
        self._export(fragment, partial, params)
        return partial

    def delta_seeds(
        self, fragment: Fragment, query: KCoreQuery, partial: Partial, ops
    ) -> set:
        """Both endpoints of each inserted edge (degrees are mutual)."""
        seeds: set = set()
        for op in ops:
            for v in (op.src, op.dst):
                if fragment.graph.has_vertex(v) or v in partial:
                    seeds.add(v)
        return seeds

    def repair_partial(
        self,
        fragment: Fragment,
        query: KCoreQuery,
        partial: Partial,
        params: UpdateParams,
        region: set,
    ) -> Partial:
        """Re-derive the invalidated component from degree upper bounds.

        Insertions can raise core numbers anywhere in the containing
        component, so the region (its whole local closure — the base
        :meth:`invalidated_region` over a symmetric edge set) restarts
        from each vertex's degree, exactly as PEval would, and iterates
        down. Mirror estimates in the region were reset to ``None`` and
        are treated as optimistic until the fixpoint refines them.
        """
        dirty: set = set()
        for v in region:
            if v in partial and fragment.graph.has_vertex(v):
                partial[v] = sum(
                    1 for p in fragment.graph.iter_neighbors(v) if p != v
                )
                dirty.add(v)
        work = self._settle(fragment, partial, params, dirty)
        self.work_log.append(("repair", fragment.fid, work))
        self._export(fragment, partial, params)
        return partial

    def assemble(
        self, query: KCoreQuery, partials: Sequence[Partial]
    ) -> dict[VertexId, int]:
        result: dict[VertexId, int] = {}
        for partial in partials:
            for v, estimate in partial.items():
                if v not in result or estimate < result[v]:
                    result[v] = estimate
        return result
