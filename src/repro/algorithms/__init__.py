"""PIE programs for the demo's query classes.

The library registers PIE programs for the classes the demo walks
through: SSSP, graph simulation (Sim), subgraph isomorphism (SubIso),
keyword search (Keyword), connected components (CC) and collaborative
filtering (CF) — plus PageRank as an extension. Each module pairs a
sequential algorithm (PEval) with a sequential incremental algorithm
(IncEval) from :mod:`repro.algorithms.sequential`.
"""

from repro.algorithms.sssp import SSSPProgram, SSSPQuery
from repro.algorithms.cc import CCProgram, CCQuery
from repro.algorithms.simulation import SimProgram, SimQuery
from repro.algorithms.subiso import SubIsoProgram, SubIsoQuery
from repro.algorithms.keyword import KeywordProgram, KeywordQuery
from repro.algorithms.cf import CFProgram, CFQuery
from repro.algorithms.pagerank import PageRankProgram, PageRankQuery
from repro.algorithms.bfs import BFSProgram, BFSQuery
from repro.algorithms.kcore import KCoreProgram, KCoreQuery

__all__ = [
    "BFSProgram",
    "BFSQuery",
    "KCoreProgram",
    "KCoreQuery",
    "SSSPProgram",
    "SSSPQuery",
    "CCProgram",
    "CCQuery",
    "SimProgram",
    "SimQuery",
    "SubIsoProgram",
    "SubIsoQuery",
    "KeywordProgram",
    "KeywordQuery",
    "CFProgram",
    "CFQuery",
    "PageRankProgram",
    "PageRankQuery",
]
