"""PIE program for PageRank (library extension, beyond the demo's six).

Formulated as *accumulative* (push-based) PageRank so that it fits the
monotonic fixed-point model: every vertex accumulates rank mass
``rank(v) = (1-d)/n + d * Σ_{u->v} rank(u)/deg(u)`` via residual
pushing, and all quantities only grow.

The update parameter of a border vertex ``v`` is a map
``{fragment id: cumulative mass pushed toward v by that fragment}``.
Cumulative totals are monotonically non-decreasing per fragment, so the
aggregate function (per-key max) is monotonic and the Assurance Theorem
applies; the ``tolerance`` truncates the geometric tail to make the
fixed point finite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.core.aggregators import Aggregator
from repro.core.partial_order import PartialOrder
from repro.core.pie import ParamSpec, PIEProgram
from repro.core.update_params import UpdateParams
from repro.graph.fragment import Fragment

VertexId = Hashable


def _push_merge(cur: object, new: object) -> object:
    merged = dict(cur)  # type: ignore[call-overload]
    for fid, total in new.items():  # type: ignore[union-attr]
        if total > merged.get(fid, 0.0):
            merged[fid] = total
    return merged


def _push_grows(old: object, new: object) -> bool:
    return all(
        new.get(fid, 0.0) >= total  # type: ignore[union-attr]
        for fid, total in old.items()  # type: ignore[union-attr]
    )


#: Per-source-fragment cumulative mass; totals only grow.
PUSH_ACCUMULATE = Aggregator(
    "push-accumulate",
    _push_merge,
    PartialOrder("per-source-growing", _push_grows),
)


@dataclass(frozen=True)
class PageRankQuery:
    """Accumulative PageRank with damping ``damping``.

    ``tolerance`` is the residual cutoff: mass below it is dropped,
    bounding the error of every rank by ``tolerance * n`` in total.
    """

    damping: float = 0.85
    tolerance: float = 1e-6


@dataclass
class PRPartial:
    """Worker-local accumulated ranks, residuals and push bookkeeping."""

    rank: dict = field(default_factory=dict)
    residual: dict = field(default_factory=dict)
    #: mass pushed toward each mirror, cumulative (what we publish).
    pushed_out: dict = field(default_factory=dict)
    #: mass already consumed from each (mirror source fid) pair.
    consumed: dict = field(default_factory=dict)


class PageRankProgram(PIEProgram[PageRankQuery, PRPartial, dict]):
    """Residual-push PageRank over fragments, as a PIE program."""

    name = "pagerank"

    def __init__(self, total_vertices: int) -> None:
        #: |V| of the global graph (needed for the teleport term).
        self.total_vertices = total_vertices
        self.work_log: list[tuple[str, int, int]] = []

    def param_spec(self, query: PageRankQuery) -> ParamSpec:
        return ParamSpec(aggregator=PUSH_ACCUMULATE, default=None)

    def _drain(
        self, fragment: Fragment, query: PageRankQuery, partial: PRPartial
    ) -> int:
        """Push residual mass until everything local is below tolerance."""
        d = query.damping
        worklist = [
            v
            for v, res in partial.residual.items()
            if res > query.tolerance and v in fragment.owned
        ]
        pushes = 0
        while worklist:
            v = worklist.pop()
            res = partial.residual.get(v, 0.0)
            if res <= query.tolerance:
                continue
            partial.residual[v] = 0.0
            partial.rank[v] = partial.rank.get(v, 0.0) + res
            pushes += 1
            out = fragment.graph.out_neighbors(v)
            if not out:
                continue  # dangling: mass retires (uniform spread omitted)
            share = d * res / len(out)
            for u in out:
                if u in fragment.owned:
                    before = partial.residual.get(u, 0.0)
                    partial.residual[u] = before + share
                    if before <= query.tolerance < before + share:
                        worklist.append(u)
                else:
                    partial.pushed_out[u] = (
                        partial.pushed_out.get(u, 0.0) + share
                    )
        return pushes

    def _publish(
        self, fragment: Fragment, partial: PRPartial, params: UpdateParams
    ) -> None:
        for v, total in partial.pushed_out.items():
            current = params.get(v) or {}
            if total > current.get(fragment.fid, 0.0):
                params.set(v, _push_merge(current, {fragment.fid: total}))

    def peval(
        self, fragment: Fragment, query: PageRankQuery, params: UpdateParams
    ) -> PRPartial:
        partial = PRPartial()
        teleport = (1.0 - query.damping) / max(1, self.total_vertices)
        for v in fragment.owned:
            partial.residual[v] = teleport
        pushes = self._drain(fragment, query, partial)
        self.work_log.append(("peval", fragment.fid, pushes))
        self._publish(fragment, partial, params)
        return partial

    def inceval(
        self,
        fragment: Fragment,
        query: PageRankQuery,
        partial: PRPartial,
        params: UpdateParams,
        changed: set[VertexId],
    ) -> PRPartial:
        for v in changed:
            if v not in fragment.owned:
                continue  # only the owner turns incoming mass into rank
            incoming = params.get(v) or {}
            for fid, total in incoming.items():
                if fid == fragment.fid:
                    continue
                seen = partial.consumed.get((v, fid), 0.0)
                if total > seen:
                    partial.residual[v] = (
                        partial.residual.get(v, 0.0) + (total - seen)
                    )
                    partial.consumed[(v, fid)] = total
        pushes = self._drain(fragment, query, partial)
        self.work_log.append(("inceval", fragment.fid, pushes))
        self._publish(fragment, partial, params)
        return partial

    def assemble(
        self, query: PageRankQuery, partials: Sequence[PRPartial]
    ) -> dict[VertexId, float]:
        result: dict[VertexId, float] = {}
        for partial in partials:
            for v, r in partial.rank.items():
                # Residual below tolerance is folded in for accuracy.
                result[v] = max(
                    result.get(v, 0.0), r + partial.residual.get(v, 0.0)
                )
        return result
