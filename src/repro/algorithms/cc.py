"""PIE program for connected-component detection (CC).

PEval labels every vertex of the local fragment with the minimum vertex
id of its local (weakly connected) component — plain union-find. Border
variables carry the labels under aggregate function ``min``; IncEval
propagates lowered labels by BFS, bounded by the relabeled region. At
the fixed point every vertex holds the minimum id of its *global*
component; Assemble min-merges partial labelings.

Vertex ids must be totally ordered (all bundled generators use ints).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.algorithms.sequential.cc_seq import (
    connected_components,
    incremental_min_labels,
)
from repro.core.aggregators import MIN
from repro.core.pie import ParamSpec, PIEProgram
from repro.core.update_params import UpdateParams
from repro.graph.fragment import Fragment

VertexId = Hashable

Partial = dict  # vertex -> smallest known component label


@dataclass(frozen=True)
class CCQuery:
    """Connected components of the whole graph (no parameters)."""


class CCProgram(PIEProgram[CCQuery, Partial, dict]):
    """Union-find + incremental min-label propagation, as a PIE program."""

    name = "cc"

    def __init__(self) -> None:
        self.work_log: list[tuple[str, int, int]] = []

    def param_spec(self, query: CCQuery) -> ParamSpec:
        # None = "no label yet"; the first concrete label always wins.
        return ParamSpec(aggregator=MIN, default=None)

    def peval(
        self, fragment: Fragment, query: CCQuery, params: UpdateParams
    ) -> Partial:
        labels = connected_components(fragment.graph)
        self.work_log.append(("peval", fragment.fid, len(labels)))
        for v in fragment.border:
            params.improve(v, labels[v])
        return labels

    def inceval(
        self,
        fragment: Fragment,
        query: CCQuery,
        partial: Partial,
        params: UpdateParams,
        changed: set[VertexId],
    ) -> Partial:
        decreased = {v: params.get(v) for v in changed}
        changes, touched = incremental_min_labels(
            fragment.graph, partial, decreased
        )
        self.work_log.append(("inceval", fragment.fid, touched))
        for v, label in changes.items():
            if v in fragment.inner_border or v in fragment.mirrors:
                params.improve(v, label)
        return partial

    def classify_update(self, query: CCQuery, op) -> bool:
        """Connectivity ignores weights: only deletions are unsafe."""
        return op.kind != "delete"

    def on_graph_update(
        self,
        fragment: Fragment,
        query: CCQuery,
        partial: Partial,
        params: UpdateParams,
        delta,
    ) -> Partial:
        """ΔG hook: an inserted edge merges two components (labels drop).

        Connectivity is undirected, so the merge must flow both ways
        across a cross-fragment edge: the side owning only the *target*
        exports the target's current label (the insertion just made it a
        border vertex the other side has never heard about). Reweights
        are connectivity-neutral no-ops; deletions are classified unsafe
        and repaired via :meth:`repair_partial`.
        """
        decreased: dict[VertexId, VertexId] = {}
        for ins in delta:
            if ins.kind != "insert":
                continue
            if ins.dst in fragment.owned and ins.src not in fragment.owned:
                # We own the target of a cross edge: the source side has
                # a brand-new mirror of it — publish our current label so
                # the merge can flow backwards across the new edge.
                label = partial.get(ins.dst)
                if label is not None:
                    params.declare([ins.dst])
                    params.improve(ins.dst, label)
                    params.touch(ins.dst)  # new mirror must hear it
            lu = partial.get(ins.src)
            if lu is None:
                lu = params.get(ins.src)
            lv = partial.get(ins.dst)
            if lv is None:
                lv = params.get(ins.dst)
            candidates = [x for x in (lu, lv) if x is not None]
            if not candidates:
                continue
            smallest = min(candidates)
            for endpoint, label in ((ins.src, lu), (ins.dst, lv)):
                if endpoint not in fragment.graph:
                    continue
                if label is None or smallest < label:
                    if smallest < decreased.get(endpoint, endpoint):
                        decreased[endpoint] = smallest
        changes, touched = incremental_min_labels(
            fragment.graph, partial, decreased
        )
        self.work_log.append(("update", fragment.fid, touched))
        for v, label in changes.items():
            if v in fragment.inner_border or v in fragment.mirrors:
                params.improve(v, label)
        return partial

    def delta_seeds(
        self, fragment: Fragment, query: CCQuery, partial: Partial, ops
    ) -> set:
        """Both endpoints of each deleted edge (connectivity is mutual)."""
        seeds: set = set()
        for op in ops:
            for v in (op.src, op.dst):
                if fragment.graph.has_vertex(v) or v in partial:
                    seeds.add(v)
        return seeds

    def invalidated_region(
        self, fragment: Fragment, query: CCQuery, partial: Partial, seeds: set
    ) -> set:
        """Every local vertex sharing a component label with a seed.

        A deletion can split a component, so *any* vertex carrying one of
        the seeds' labels may owe its label to the lost edge. At the old
        fixed point a local weak component is label-uniform, so taking
        label-mates captures whole components and leaves no local edge
        between the region and its complement.
        """
        labels = {
            partial[v] for v in seeds if partial.get(v) is not None
        }
        region = set(seeds)
        for v, label in partial.items():
            if label in labels:
                region.add(v)
        return region

    def repair_partial(
        self,
        fragment: Fragment,
        query: CCQuery,
        partial: Partial,
        params: UpdateParams,
        region: set,
    ) -> Partial:
        """Relabel the invalidated components from scratch.

        The region is a union of whole local weak components (see
        :meth:`invalidated_region`), so recomputing union-find on the
        induced subgraph is locally complete; cross-fragment stitching
        happens in the IncEval fixpoint that follows.
        """
        for v in region:
            partial.pop(v, None)
        present = [v for v in region if fragment.graph.has_vertex(v)]
        labels = connected_components(fragment.graph.subgraph(present))
        self.work_log.append(("repair", fragment.fid, len(labels)))
        partial.update(labels)
        for v, label in labels.items():
            if v in fragment.inner_border or v in fragment.mirrors:
                params.improve(v, label)
        return partial

    def assemble(
        self, query: CCQuery, partials: Sequence[Partial]
    ) -> dict[VertexId, VertexId]:
        result: dict[VertexId, VertexId] = {}
        for partial in partials:
            for v, label in partial.items():
                if v not in result or label < result[v]:
                    result[v] = label
        return result
