"""PIE program for connected-component detection (CC).

PEval labels every vertex of the local fragment with the minimum vertex
id of its local (weakly connected) component — plain union-find. Border
variables carry the labels under aggregate function ``min``; IncEval
propagates lowered labels by BFS, bounded by the relabeled region. At
the fixed point every vertex holds the minimum id of its *global*
component; Assemble min-merges partial labelings.

Vertex ids must be totally ordered (all bundled generators use ints).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.algorithms.sequential.cc_seq import (
    connected_components,
    incremental_min_labels,
)
from repro.core.aggregators import MIN
from repro.core.pie import ParamSpec, PIEProgram
from repro.core.update_params import UpdateParams
from repro.graph.fragment import Fragment
from repro.utils.dsu import DisjointSet

VertexId = Hashable

Partial = dict  # vertex -> smallest known component label


def _canon(u: VertexId, v: VertexId) -> tuple:
    """Canonical undirected key for an edge (order-insensitive)."""
    return (u, v) if repr(u) <= repr(v) else (v, u)


class _SpanForest:
    """Spanning forest of one fragment's local graph, for deletion triage.

    A deleted edge that is *off* a spanning forest of the current local
    graph cannot split any local component — every forest edge still
    exists, so its endpoints stay connected. ``delta_seeds`` uses this to
    return an empty seed set (hence an empty invalidated region) for
    such deletions instead of relabeling whole components.

    The forest is pure derived state: it can always be rebuilt from the
    fragment graph, and ``delta_seeds`` does exactly that whenever the
    maintained copy cannot certify a batch (unknown endpoint, or a tree
    edge was deleted). That keeps seed sets a function of the mutated
    graph alone, so the process backend — whose workers receive a fresh
    program copy on resume and hold no forest — computes byte-identical
    seeds to the simulator.
    """

    def __init__(self, graph) -> None:
        self.dsu = DisjointSet(graph.vertices())
        self.tree: set[tuple] = set()
        for edge in graph.edges():
            if self.dsu.union(edge.src, edge.dst):
                self.tree.add(_canon(edge.src, edge.dst))

    def insert(self, u: VertexId, v: VertexId) -> None:
        """Maintain the forest across an edge insertion."""
        if self.dsu.union(u, v):
            self.tree.add(_canon(u, v))

    def survives(self, u: VertexId, v: VertexId) -> bool:
        """True if deleting (u, v) provably leaves the forest intact."""
        return (
            u in self.dsu
            and v in self.dsu
            and _canon(u, v) not in self.tree
        )

    def connected(self, u: VertexId, v: VertexId) -> bool:
        return u in self.dsu and v in self.dsu and self.dsu.connected(u, v)


@dataclass(frozen=True)
class CCQuery:
    """Connected components of the whole graph (no parameters)."""


class CCProgram(PIEProgram[CCQuery, Partial, dict]):
    """Union-find + incremental min-label propagation, as a PIE program."""

    name = "cc"

    #: MIN label propagation is decreasing-monotone, so CC is eligible
    #: for barrier-relaxed supersteps (verified by grape-lint GRP6xx).
    relaxed = True

    def __init__(self) -> None:
        self.work_log: list[tuple[str, int, int]] = []
        #: fid -> spanning forest of that fragment's local graph (see
        #: :class:`_SpanForest`); derived state, rebuilt on demand.
        self._forests: dict[int, _SpanForest] = {}

    def param_spec(self, query: CCQuery) -> ParamSpec:
        # None = "no label yet"; the first concrete label always wins.
        return ParamSpec(aggregator=MIN, default=None)

    def peval(
        self, fragment: Fragment, query: CCQuery, params: UpdateParams
    ) -> Partial:
        labels = connected_components(fragment.graph)
        self._forests[fragment.fid] = _SpanForest(fragment.graph)
        self.work_log.append(("peval", fragment.fid, len(labels)))
        for v in fragment.border:
            params.improve(v, labels[v])
        return labels

    def inceval(
        self,
        fragment: Fragment,
        query: CCQuery,
        partial: Partial,
        params: UpdateParams,
        changed: set[VertexId],
    ) -> Partial:
        decreased = {v: params.get(v) for v in changed}
        changes, touched = incremental_min_labels(
            fragment.graph, partial, decreased
        )
        self.work_log.append(("inceval", fragment.fid, touched))
        for v, label in changes.items():
            if v in fragment.inner_border or v in fragment.mirrors:
                params.improve(v, label)
        return partial

    def classify_update(self, query: CCQuery, op) -> bool:
        """Connectivity ignores weights: only deletions are unsafe.

        Deletions still route through the invalidate path, but
        :meth:`delta_seeds` consults a per-fragment spanning forest to
        prove most of them harmless (off-forest delete -> empty region);
        classification itself cannot, because it sees no fragment.
        """
        return op.kind != "delete"

    def on_graph_update(
        self,
        fragment: Fragment,
        query: CCQuery,
        partial: Partial,
        params: UpdateParams,
        delta,
    ) -> Partial:
        """ΔG hook: an inserted edge merges two components (labels drop).

        Connectivity is undirected, so the merge must flow both ways
        across a cross-fragment edge: the side owning only the *target*
        exports the target's current label (the insertion just made it a
        border vertex the other side has never heard about). Reweights
        are connectivity-neutral no-ops; deletions are classified unsafe
        and repaired via :meth:`repair_partial`.
        """
        decreased: dict[VertexId, VertexId] = {}
        forest = self._forests.get(fragment.fid)
        for ins in delta:
            if ins.kind != "insert":
                continue
            if (
                forest is not None
                and ins.src in fragment.graph
                and ins.dst in fragment.graph
            ):
                forest.insert(ins.src, ins.dst)
            if ins.dst in fragment.owned and ins.src not in fragment.owned:
                # We own the target of a cross edge: the source side has
                # a brand-new mirror of it — publish our current label so
                # the merge can flow backwards across the new edge.
                label = partial.get(ins.dst)
                if label is not None:
                    params.declare([ins.dst])
                    params.improve(ins.dst, label)
                    params.touch(ins.dst)  # new mirror must hear it
            lu = partial.get(ins.src)
            if lu is None:
                lu = params.get(ins.src)
            lv = partial.get(ins.dst)
            if lv is None:
                lv = params.get(ins.dst)
            candidates = [x for x in (lu, lv) if x is not None]
            if not candidates:
                continue
            smallest = min(candidates)
            for endpoint, label in ((ins.src, lu), (ins.dst, lv)):
                if endpoint not in fragment.graph:
                    continue
                if label is None or smallest < label:
                    if smallest < decreased.get(endpoint, endpoint):
                        decreased[endpoint] = smallest
        changes, touched = incremental_min_labels(
            fragment.graph, partial, decreased
        )
        self.work_log.append(("update", fragment.fid, touched))
        for v, label in changes.items():
            if v in fragment.inner_border or v in fragment.mirrors:
                params.improve(v, label)
        return partial

    def delta_seeds(
        self, fragment: Fragment, query: CCQuery, partial: Partial, ops
    ) -> set:
        """Endpoints of deletions the spanning forest cannot absolve.

        The batch is already applied to ``fragment.graph`` when this
        runs. A deletion whose endpoints are still locally connected
        cannot have split any local component, so it contributes no
        seeds — and a batch of such deletions yields an empty
        invalidated region, skipping repair entirely. The maintained
        forest certifies this in O(1) per op; if it cannot (never built
        here, endpoint it has not seen, or a tree edge was deleted), it
        is rebuilt from the mutated graph so the test is exact — and, by
        construction, identical on every backend.
        """
        graph = fragment.graph
        forest = self._forests.get(fragment.fid)
        if forest is None or any(
            op.kind == "delete" and not forest.survives(op.src, op.dst)
            for op in ops
        ):
            forest = _SpanForest(graph)
            self._forests[fragment.fid] = forest
        seeds: set = set()
        for op in ops:
            if op.kind == "delete" and forest.connected(op.src, op.dst):
                continue  # off-forest: local components unchanged
            for v in (op.src, op.dst):
                if graph.has_vertex(v) or v in partial:
                    seeds.add(v)
        return seeds

    def invalidated_region(
        self, fragment: Fragment, query: CCQuery, partial: Partial, seeds: set
    ) -> set:
        """Every local vertex sharing a component label with a seed.

        A deletion can split a component, so *any* vertex carrying one of
        the seeds' labels may owe its label to the lost edge. At the old
        fixed point a local weak component is label-uniform, so taking
        label-mates captures whole components and leaves no local edge
        between the region and its complement.
        """
        labels = {
            partial[v] for v in seeds if partial.get(v) is not None
        }
        region = set(seeds)
        for v, label in partial.items():
            if label in labels:
                region.add(v)
        return region

    def repair_partial(
        self,
        fragment: Fragment,
        query: CCQuery,
        partial: Partial,
        params: UpdateParams,
        region: set,
    ) -> Partial:
        """Relabel the invalidated components from scratch.

        The region is a union of whole local weak components (see
        :meth:`invalidated_region`), so recomputing union-find on the
        induced subgraph is locally complete; cross-fragment stitching
        happens in the IncEval fixpoint that follows.
        """
        for v in region:
            partial.pop(v, None)
        present = [v for v in region if fragment.graph.has_vertex(v)]
        labels = connected_components(fragment.graph.subgraph(present))
        self.work_log.append(("repair", fragment.fid, len(labels)))
        partial.update(labels)
        for v, label in labels.items():
            if v in fragment.inner_border or v in fragment.mirrors:
                params.improve(v, label)
        return partial

    def assemble(
        self, query: CCQuery, partials: Sequence[Partial]
    ) -> dict[VertexId, VertexId]:
        result: dict[VertexId, VertexId] = {}
        for partial in partials:
            for v, label in partial.items():
                if v not in result or label < result[v]:
                    result[v] = label
        return result
