"""Ablation variants of PIE programs for the design-choice experiments.

DESIGN.md §6 calls out the design choices the paper credits for GRAPE's
performance; these variants disable one choice at a time so benchmarks
can quantify it:

* :class:`SSSPRecomputeProgram` — IncEval re-runs PEval (full Dijkstra)
  instead of the bounded incremental algorithm. Same fixed point, same
  answers; the per-round cost becomes Θ(|F_i|) instead of
  Θ(|M_i| + |ΔO_i|) (experiment E5).
"""

from __future__ import annotations

from typing import Hashable

from repro.algorithms.sequential.dijkstra import INF, dijkstra
from repro.algorithms.sssp import Partial, SSSPProgram, SSSPQuery
from repro.core.update_params import UpdateParams
from repro.graph.fragment import Fragment

VertexId = Hashable


class SSSPRecomputeProgram(SSSPProgram):
    """SSSP with IncEval = "throw away and re-run Dijkstra".

    This is the unbounded strawman the paper's bounded-IncEval argument
    is made against: correctness is unchanged, but every round pays for
    the whole fragment.
    """

    name = "sssp-recompute"

    # This program *is* the unbounded strawman grape-lint exists to catch;
    # its findings are the experiment, not bugs.
    # grape-lint: disable=GRP203
    def inceval(
        self,
        fragment: Fragment,
        query: SSSPQuery,
        partial: Partial,
        params: UpdateParams,
        changed: set[VertexId],
    ) -> Partial:
        # Seeds: the source (if local) plus every border assumption.
        seeds: dict[VertexId, float] = {}
        if query.source in fragment.graph:
            seeds[query.source] = 0.0
        for v in fragment.border:
            d = params.get(v)
            if d < INF:
                seeds[v] = d
        dist, settled = dijkstra(fragment.graph, seeds)
        self.work_log.append(("inceval", fragment.fid, settled))
        for v, d in dist.items():
            if d < partial.get(v, INF):
                partial[v] = d
        for v in fragment.border:  # grape-lint: disable=GRP202
            d = partial.get(v, INF)
            if d < INF:
                params.improve(v, d)
        return partial
