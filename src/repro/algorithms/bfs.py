"""PIE program for BFS hop distances / reachability (library extension).

Structurally SSSP with unit edge weights, but PEval/IncEval are plain
queue-based BFS — cheaper than Dijkstra and a natural demonstration
that the PIE engine is agnostic to which textbook algorithm is plugged
in. The answer maps every vertex to its hop distance from the source
(unreachable vertices are absent); ``reachable_from`` derives the
reachability set.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.core.aggregators import MIN
from repro.core.pie import ParamSpec, PIEProgram
from repro.core.update_params import UpdateParams
from repro.graph.digraph import Graph
from repro.graph.fragment import Fragment

VertexId = Hashable
INF = float("inf")

Partial = dict  # vertex -> best known hop distance


@dataclass(frozen=True)
class BFSQuery:
    """Hop distances from ``source`` along out-edges."""

    source: VertexId
    max_depth: int | None = None


def local_bfs(
    graph: Graph,
    seeds: Mapping[VertexId, float],
    known: Mapping[VertexId, float] | None = None,
    max_depth: int | None = None,
) -> tuple[dict[VertexId, float], int]:
    """Multi-seed BFS with prior distances; returns (improvements, work)."""
    prior = known or {}
    updates: dict[VertexId, float] = {}
    queue: deque[VertexId] = deque()
    for v, d in sorted(seeds.items(), key=lambda kv: kv[1]):
        if v in graph and d < prior.get(v, INF) and d < updates.get(v, INF):
            updates[v] = d
            queue.append(v)
    work = 0
    while queue:
        v = queue.popleft()
        work += 1
        d = updates[v]
        if max_depth is not None and d >= max_depth:
            continue
        for u, _ in graph.iter_out(v):
            nd = d + 1
            if nd < updates.get(u, prior.get(u, INF)):
                updates[u] = nd
                queue.append(u)
    return updates, work


class BFSProgram(PIEProgram[BFSQuery, Partial, dict]):
    """Textbook BFS + incremental BFS + min-union, as a PIE program."""

    name = "bfs"

    #: MIN aggregation is decreasing-monotone, so BFS is eligible for
    #: barrier-relaxed supersteps (verified by grape-lint GRP6xx).
    relaxed = True

    def __init__(self) -> None:
        self.work_log: list[tuple[str, int, int]] = []

    def param_spec(self, query: BFSQuery) -> ParamSpec:
        return ParamSpec(aggregator=MIN, default=INF)

    def peval(
        self, fragment: Fragment, query: BFSQuery, params: UpdateParams
    ) -> Partial:
        seeds = {}
        if query.source in fragment.graph:
            seeds[query.source] = 0.0
        partial, work = local_bfs(
            fragment.graph, seeds, max_depth=query.max_depth
        )
        self.work_log.append(("peval", fragment.fid, work))
        for v in fragment.border:
            d = partial.get(v, INF)
            if d < INF:
                params.improve(v, d)
        return partial

    def inceval(
        self,
        fragment: Fragment,
        query: BFSQuery,
        partial: Partial,
        params: UpdateParams,
        changed: set[VertexId],
    ) -> Partial:
        seeds = {v: params.get(v) for v in changed}
        updates, work = local_bfs(
            fragment.graph, seeds, known=partial, max_depth=query.max_depth
        )
        partial.update(updates)
        self.work_log.append(("inceval", fragment.fid, work))
        for v, d in updates.items():
            if v in fragment.inner_border or v in fragment.mirrors:
                params.improve(v, d)
        return partial

    def classify_update(self, query: BFSQuery, op) -> bool:
        """Hop distances ignore weights: only deletions are unsafe."""
        return op.kind != "delete"

    def on_graph_update(
        self,
        fragment: Fragment,
        query: BFSQuery,
        partial: Partial,
        params: UpdateParams,
        delta,
    ) -> Partial:
        """ΔG hook: new edges only shorten hop distances.

        Reweights are hop-neutral no-ops; deletions are classified
        unsafe and repaired via :meth:`repair_partial`.
        """
        offers: dict[VertexId, float] = {}
        for op in delta:
            if op.kind != "insert":
                continue
            du = partial.get(op.src, INF)
            if du < INF:
                candidate = du + 1
                if candidate < offers.get(op.dst, INF):
                    offers[op.dst] = candidate
        updates, work = local_bfs(
            fragment.graph, offers, known=partial, max_depth=query.max_depth
        )
        partial.update(updates)
        self.work_log.append(("update", fragment.fid, work))
        for v, d in updates.items():
            if v in fragment.inner_border or v in fragment.mirrors:
                params.improve(v, d)
        return partial

    def delta_seeds(
        self, fragment: Fragment, query: BFSQuery, partial: Partial, ops
    ) -> set:
        """Endpoints whose hop count may have routed through a deletion.

        Unit-weight tightness: the lost edge mattered only when
        ``hops(dst) == hops(src) + 1``.
        """
        seeds: set = set()
        directed = fragment.graph.directed
        for op in ops:
            pairs = [(op.src, op.dst)]
            if not directed:
                pairs.append((op.dst, op.src))
            for u, v in pairs:
                if not fragment.graph.has_vertex(v):
                    # Pruned mirror: invalidation can no longer reach
                    # this fragment (it left known_by), so the stale
                    # partial entry must be discarded now (see SSSP).
                    if v in partial:
                        seeds.add(v)
                    continue
                dv = partial.get(v, INF)
                if dv == INF:
                    continue
                if dv == partial.get(u, INF) + 1:
                    seeds.add(v)
        return seeds

    def invalidated_region(
        self, fragment: Fragment, query: BFSQuery, partial: Partial,
        seeds: set,
    ) -> set:
        """Closure of ``seeds`` over tight (hop-incrementing) out-edges."""
        region = set(seeds)
        stack = [v for v in seeds if fragment.graph.has_vertex(v)]
        while stack:
            u = stack.pop()
            du = partial.get(u, INF)
            if du == INF:
                continue
            for v, _ in fragment.graph.iter_out(u):
                if v in region:
                    continue
                if partial.get(v, INF) == du + 1:
                    region.add(v)
                    stack.append(v)
        return region

    def repair_partial(
        self,
        fragment: Fragment,
        query: BFSQuery,
        partial: Partial,
        params: UpdateParams,
        region: set,
    ) -> Partial:
        """Re-derive an invalidated region's hops from its boundary."""
        for v in region:
            partial.pop(v, None)
        seeds: dict[VertexId, float] = {}
        if query.source in region and query.source in fragment.graph:
            seeds[query.source] = 0.0
        for v in region:
            if not fragment.graph.has_vertex(v):
                continue
            best = seeds.get(v, INF)
            for u, _ in fragment.graph.iter_in(v):
                if u in region:
                    continue
                du = partial.get(u, INF)
                if du + 1 < best:
                    best = du + 1
            if best < INF:
                if query.max_depth is not None and best > query.max_depth:
                    continue
                seeds[v] = best
        updates, work = local_bfs(
            fragment.graph, seeds, known=partial, max_depth=query.max_depth
        )
        partial.update(updates)
        self.work_log.append(("repair", fragment.fid, work))
        for v, d in updates.items():
            if v in fragment.inner_border or v in fragment.mirrors:
                params.improve(v, d)
        return partial

    def assemble(
        self, query: BFSQuery, partials: Sequence[Partial]
    ) -> dict[VertexId, float]:
        result: dict[VertexId, float] = {}
        for partial in partials:
            for v, d in partial.items():
                if d < result.get(v, INF):
                    result[v] = d
        return result


def reachable_from(answer: Mapping[VertexId, float]) -> set[VertexId]:
    """Vertices reachable from the BFS source, from a BFS answer."""
    return {v for v, d in answer.items() if d < INF}
