"""PIE program for keyword search in graphs (Keyword).

Query: a list of keywords plus a hop radius. Answer: every *root* vertex
from which all keywords are reachable within the radius (along
out-edges), scored by total distance — the distance core of rooted
keyword search.

Border variables carry, per vertex, the tuple of its best known
distances to each keyword (component-wise ``min`` aggregate; the tuple
only improves component-wise, so the computation is monotonic). PEval is
a per-keyword backward BFS; IncEval re-runs the BFS seeded only at the
mirrors whose tuples improved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.algorithms.sequential.keyword_seq import (
    UNREACHED,
    keyword_distances,
)
from repro.core.aggregators import Aggregator
from repro.core.partial_order import PartialOrder
from repro.core.pie import ParamSpec, PIEProgram
from repro.core.update_params import UpdateParams
from repro.graph.fragment import Fragment

VertexId = Hashable

Partial = list  # one {vertex: distance} map per keyword


@dataclass(frozen=True)
class KeywordQuery:
    """Roots covering every keyword within ``radius`` out-hops."""

    keywords: tuple[str, ...]
    radius: int = 3

    def __post_init__(self) -> None:
        object.__setattr__(self, "keywords", tuple(self.keywords))


def _tuple_min(cur: object, new: object) -> object:
    return tuple(min(a, b) for a, b in zip(cur, new))  # type: ignore[arg-type]


def _tuple_decreases(old: object, new: object) -> bool:
    return all(n <= o for n, o in zip(new, old))  # type: ignore[arg-type]


#: Component-wise min over distance tuples; each component only drops.
TUPLE_MIN = Aggregator(
    "tuple-min",
    _tuple_min,
    PartialOrder("componentwise-decreasing", _tuple_decreases),
)


class KeywordProgram(PIEProgram[KeywordQuery, Partial, dict]):
    """Backward BFS per keyword + incremental re-expansion, as PIE."""

    name = "keyword"

    def __init__(self) -> None:
        self.work_log: list[tuple[str, int, int]] = []

    def param_spec(self, query: KeywordQuery) -> ParamSpec:
        return ParamSpec(aggregator=TUPLE_MIN, default=None)

    def peval(
        self, fragment: Fragment, query: KeywordQuery, params: UpdateParams
    ) -> Partial:
        partial: Partial = []
        visited_total = 0
        for keyword in query.keywords:
            updates, visited = keyword_distances(
                fragment.graph, keyword, query.radius
            )
            partial.append(updates)
            visited_total += visited
        self.work_log.append(("peval", fragment.fid, visited_total))
        self._export(fragment, query, params, partial, fragment.border)
        return partial

    def inceval(
        self,
        fragment: Fragment,
        query: KeywordQuery,
        partial: Partial,
        params: UpdateParams,
        changed: set[VertexId],
    ) -> Partial:
        visited_total = 0
        improved: set[VertexId] = set()
        for idx, keyword in enumerate(query.keywords):
            seeds = {}
            for v in changed:
                value = params.get(v)
                if value is not None and value[idx] < UNREACHED:
                    seeds[v] = value[idx]
            if not seeds:
                continue
            updates, visited = keyword_distances(
                fragment.graph,
                keyword,
                query.radius,
                seeds=seeds,
                known=partial[idx],
                scan_holders=False,  # PEval already settled all holders
            )
            partial[idx].update(updates)
            visited_total += visited
            improved.update(updates)
        self.work_log.append(("inceval", fragment.fid, visited_total))
        self._export(
            fragment, query, params, partial, improved & fragment.border
        )
        return partial

    def assemble(
        self, query: KeywordQuery, partials: Sequence[Partial]
    ) -> dict[VertexId, float]:
        k = len(query.keywords)
        best: dict[VertexId, list[float]] = {}
        for partial in partials:
            for idx in range(k):
                for v, d in partial[idx].items():
                    row = best.setdefault(v, [UNREACHED] * k)
                    if d < row[idx]:
                        row[idx] = d
        return {
            v: sum(row)
            for v, row in best.items()
            if all(d <= query.radius for d in row)
        }

    def _export(
        self,
        fragment: Fragment,
        query: KeywordQuery,
        params: UpdateParams,
        partial: Partial,
        vertices,
    ) -> None:
        for v in vertices:
            row = tuple(
                partial[idx].get(v, UNREACHED)
                for idx in range(len(query.keywords))
            )
            if any(d < UNREACHED for d in row):
                params.improve(v, row)
