"""Sequential graph algorithms — the code GRAPE parallelizes *as a whole*.

These are deliberately ordinary textbook implementations: Dijkstra,
union-find components, simulation refinement, VF2, BFS keyword cover,
SGD matrix factorization, power-iteration PageRank — plus their
incremental counterparts (Ramalingam–Reps-style for SSSP). PIE programs
call them unchanged; tests use them as oracles against the distributed
engine.
"""

from repro.algorithms.sequential.dijkstra import dijkstra, single_source
from repro.algorithms.sequential.inc_sssp import incremental_sssp
from repro.algorithms.sequential.cc_seq import (
    connected_components,
    incremental_min_labels,
)
from repro.algorithms.sequential.simulation_seq import (
    graph_simulation,
    refine_simulation,
)
from repro.algorithms.sequential.vf2 import find_subgraph_isomorphisms
from repro.algorithms.sequential.keyword_seq import keyword_distances
from repro.algorithms.sequential.cf_seq import FactorModel, sgd_epoch, rmse
from repro.algorithms.sequential.pagerank_seq import pagerank

__all__ = [
    "dijkstra",
    "single_source",
    "incremental_sssp",
    "connected_components",
    "incremental_min_labels",
    "graph_simulation",
    "refine_simulation",
    "find_subgraph_isomorphisms",
    "keyword_distances",
    "FactorModel",
    "sgd_epoch",
    "rmse",
    "pagerank",
]
