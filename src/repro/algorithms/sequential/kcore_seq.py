"""k-core decomposition: sequential peeling + H-index iteration.

The *core number* of a vertex is the largest ``k`` such that the vertex
belongs to a subgraph where every vertex has degree ≥ k. Two classic
sequential algorithms:

* :func:`core_numbers` — Matula–Beck peeling (repeatedly remove the
  minimum-degree vertex), the exact linear-time oracle;
* :func:`h_index_round` — one round of Montresor et al.'s convergent
  estimate ``core(v) <- H(core(n1), ..., core(nk))`` where ``H`` is the
  h-index of the neighbor estimates. Estimates start at the degree and
  only decrease, which is exactly the monotonicity the PIE engine needs.

Both treat adjacency as undirected and assume a *symmetric* edge set
(every bundled traversal generator stores both directions), because a
fragment only sees the out-edges of its owned vertices.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.graph.digraph import Graph

VertexId = Hashable


def core_numbers(graph: Graph) -> dict[VertexId, int]:
    """Exact core numbers by min-degree peeling (undirected semantics)."""
    degree = {
        v: sum(1 for _ in graph.iter_neighbors(v)) for v in graph.vertices()
    }
    # bucket queue over degrees
    buckets: dict[int, set[VertexId]] = {}
    for v, d in degree.items():
        buckets.setdefault(d, set()).add(v)
    core: dict[VertexId, int] = {}
    current = 0
    remaining = set(degree)
    while remaining:
        while current not in buckets or not buckets[current]:
            current += 1
            if current > len(degree):
                break
        if current > len(degree):
            break
        v = buckets[current].pop()
        if v not in remaining:
            continue
        remaining.discard(v)
        core[v] = current
        for u in graph.iter_neighbors(v):
            if u in remaining and degree[u] > current:
                buckets[degree[u]].discard(u)
                degree[u] -= 1
                buckets.setdefault(degree[u], set()).add(u)
                if degree[u] < current:
                    current = degree[u]
    return core


def h_index(values: Iterable[int]) -> int:
    """Largest h such that at least h of the values are >= h."""
    counts = sorted(values, reverse=True)
    h = 0
    for i, value in enumerate(counts, start=1):
        if value >= i:
            h = i
        else:
            break
    return h


def h_index_round(
    graph: Graph,
    estimate: Mapping[VertexId, int],
    external: Mapping[VertexId, int] | None = None,
    vertices: Iterable[VertexId] | None = None,
) -> tuple[dict[VertexId, int], int]:
    """One synchronous H-index improvement round over ``vertices``.

    ``estimate`` holds current (over-)estimates for local vertices;
    ``external`` supplies estimates for neighbors not in ``estimate``
    (mirror update parameters). Returns (decreases applied, work count).
    """
    external = external or {}
    changes: dict[VertexId, int] = {}
    work = 0
    targets = estimate.keys() if vertices is None else vertices
    for v in targets:
        if v not in estimate:
            continue
        work += 1
        nbr_estimates = []
        for u in graph.iter_neighbors(v):
            if u == v:
                continue
            if u in estimate:
                nbr_estimates.append(changes.get(u, estimate[u]))
            else:
                # Unknown external estimates must stay optimistic (+inf):
                # the H-index iteration only converges from above.
                nbr_estimates.append(external.get(u, float("inf")))
        new = min(estimate[v], h_index(nbr_estimates))
        if new < estimate[v]:
            changes[v] = new
    return changes, work


def converge_h_index(
    graph: Graph,
    estimate: dict[VertexId, int],
    external: Mapping[VertexId, int] | None = None,
    max_rounds: int = 10_000,
) -> tuple[dict[VertexId, int], int]:
    """Iterate :func:`h_index_round` to the local fixed point in place.

    Returns (all changed vertices with final values, total work).
    """
    all_changes: dict[VertexId, int] = {}
    total_work = 0
    dirty: Iterable[VertexId] | None = None
    for _ in range(max_rounds):
        changes, work = h_index_round(
            graph, estimate, external=external, vertices=dirty
        )
        total_work += work
        if not changes:
            break
        estimate.update(changes)
        all_changes.update(changes)
        # only neighbors of changed vertices can improve next round
        dirty = {
            p
            for v in changes
            if v in graph
            for p in graph.iter_neighbors(v)
            if p in estimate
        }
    return all_changes, total_work
