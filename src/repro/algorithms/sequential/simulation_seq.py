"""Graph pattern matching via (graph) simulation.

A data vertex ``v`` *simulates* a pattern vertex ``u`` when their labels
match and, for every pattern edge ``u -> u'``, some out-neighbor of
``v`` simulates ``u'``. ``graph_simulation`` computes the maximum
simulation relation by iterated refinement from the label-based initial
candidates — the standard O(|V||E|) sequential algorithm.

``refine_simulation`` is the fragment-aware variant PEval/IncEval use:
candidate sets of *assumed* vertices (mirrors owned elsewhere) are fixed
inputs rather than being refined locally, because their out-edges are
not visible in this fragment.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.graph.digraph import Graph

VertexId = Hashable
CandidateMap = dict[VertexId, frozenset]


def initial_candidates(
    graph: Graph, pattern: Graph, vertices: Iterable[VertexId] | None = None
) -> CandidateMap:
    """Label-based optimistic candidates: u ∈ cand(v) iff labels agree.

    A pattern vertex with label None is a wildcard and starts compatible
    with every data vertex (the same convention VF2 uses).
    """
    wildcards = frozenset(
        u for u in pattern.vertices() if pattern.vertex_label(u) is None
    )
    by_label: dict[str | None, frozenset] = {}
    for u in pattern.vertices():
        label = pattern.vertex_label(u)
        if label is not None:
            by_label[label] = by_label.get(label, frozenset()) | {u}
    for label in by_label:
        by_label[label] |= wildcards
    out: CandidateMap = {}
    universe = graph.vertices() if vertices is None else vertices
    for v in universe:
        out[v] = by_label.get(graph.vertex_label(v), wildcards)
    return out


def refine_simulation(
    graph: Graph,
    pattern: Graph,
    candidates: CandidateMap,
    frozen: Mapping[VertexId, frozenset] | None = None,
    dirty: Iterable[VertexId] | None = None,
) -> tuple[CandidateMap, int]:
    """Refine candidate sets to the local maximum simulation.

    Args:
        graph: data (fragment) graph.
        pattern: pattern graph (labels on vertices).
        candidates: current candidate sets, mutated toward the fixpoint.
        frozen: vertices whose sets are external truths (mirrors) — read
            but never shrunk here.
        dirty: vertices whose sets just changed (seeds the worklist);
            None means refine everything.

    Returns:
        (candidates, refinement steps executed). A pattern vertex ``u``
        stays in ``cand(v)`` only if every pattern edge ``u -> u'`` is
        witnessed by some out-neighbor ``w`` of ``v`` with
        ``u' ∈ cand(w)``.
    """
    frozen = frozen or {}
    worklist: set[VertexId] = set()
    if dirty is None:
        worklist.update(v for v in candidates if v not in frozen)
    else:
        # A change at w can only invalidate in-neighbors of w.
        for w in dirty:
            if w in graph:
                worklist.update(
                    p for p in graph.in_neighbors(w) if p in candidates
                )
            if w in candidates and w not in frozen:
                worklist.add(w)
    steps = 0
    while worklist:
        v = worklist.pop()
        if v in frozen or v not in candidates:
            continue
        steps += 1
        current = candidates[v]
        if not current:
            continue
        survivors = set()
        out_nbrs = graph.out_neighbors(v) if v in graph else []
        for u in current:
            ok = True
            for u_child in pattern.out_neighbors(u):
                witnessed = any(
                    u_child in _cand_of(w, candidates, frozen)
                    for w in out_nbrs
                )
                if not witnessed:
                    ok = False
                    break
            if ok:
                survivors.add(u)
        if len(survivors) != len(current):
            candidates[v] = frozenset(survivors)
            if v in graph:
                worklist.update(
                    p for p in graph.in_neighbors(v) if p in candidates
                )
    return candidates, steps


def _cand_of(
    v: VertexId,
    candidates: CandidateMap,
    frozen: Mapping[VertexId, frozenset],
) -> frozenset:
    if v in frozen:
        return frozen[v]
    return candidates.get(v, frozenset())


def graph_simulation(
    graph: Graph, pattern: Graph
) -> dict[VertexId, set[VertexId]]:
    """Maximum simulation of ``pattern`` in ``graph`` (sequential oracle).

    Returns pattern vertex -> set of simulating data vertices. Empty sets
    mean the pattern does not match at that vertex; a pattern matches the
    graph when every pattern vertex has a non-empty set.
    """
    candidates = initial_candidates(graph, pattern)
    refine_simulation(graph, pattern, candidates)
    result: dict[VertexId, set[VertexId]] = {
        u: set() for u in pattern.vertices()
    }
    for v, cands in candidates.items():
        for u in cands:
            result[u].add(v)
    return result
