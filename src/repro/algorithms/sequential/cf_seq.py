"""Collaborative filtering: matrix-factorization SGD on a rating graph.

The demo lists CF among the PIE programs registered in GRAPE's library.
The model is classic latent-factor MF: rating(u, i) ≈ p_u · q_i + b_u +
b_i + mu, trained by stochastic gradient descent over rating edges. The
sequential building blocks here — one SGD epoch over a set of edges, and
RMSE evaluation — are what CF's PEval/IncEval run per fragment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

from repro.utils.rng import make_rng

VertexId = Hashable
Rating = tuple[VertexId, VertexId, float]  # (user, item, rating)


@dataclass
class FactorModel:
    """Latent factors and biases for users and items."""

    rank: int
    mean: float = 0.0
    user_factors: dict[VertexId, list[float]] = field(default_factory=dict)
    item_factors: dict[VertexId, list[float]] = field(default_factory=dict)
    user_bias: dict[VertexId, float] = field(default_factory=dict)
    item_bias: dict[VertexId, float] = field(default_factory=dict)

    def ensure(self, users: Iterable[VertexId], items: Iterable[VertexId],
               seed: int | None = 0) -> None:
        """Initialize factors for unseen users/items (deterministic)."""
        rng = make_rng(seed, "cf-init")
        scale = 1.0 / math.sqrt(self.rank)
        for u in users:
            if u not in self.user_factors:
                self.user_factors[u] = [
                    rng.gauss(0, scale) for _ in range(self.rank)
                ]
                self.user_bias[u] = 0.0
        for i in items:
            if i not in self.item_factors:
                self.item_factors[i] = [
                    rng.gauss(0, scale) for _ in range(self.rank)
                ]
                self.item_bias[i] = 0.0

    def predict(self, user: VertexId, item: VertexId) -> float:
        """Predicted rating for ``(user, item)`` under the model."""
        p = self.user_factors.get(user)
        q = self.item_factors.get(item)
        dot = sum(a * b for a, b in zip(p, q)) if p and q else 0.0
        return (
            self.mean
            + self.user_bias.get(user, 0.0)
            + self.item_bias.get(item, 0.0)
            + dot
        )


def sgd_epoch(
    model: FactorModel,
    ratings: Sequence[Rating],
    lr: float = 0.02,
    reg: float = 0.05,
    seed: int | None = 0,
) -> float:
    """One SGD pass over ``ratings`` (shuffled deterministically).

    Returns the epoch's mean squared error before updates (for
    convergence tracking).
    """
    order = list(range(len(ratings)))
    make_rng(seed, "cf-epoch").shuffle(order)
    total_sq = 0.0
    for idx in order:
        user, item, rating = ratings[idx]
        err = rating - model.predict(user, item)
        total_sq += err * err
        p = model.user_factors[user]
        q = model.item_factors[item]
        model.user_bias[user] += lr * (err - reg * model.user_bias[user])
        model.item_bias[item] += lr * (err - reg * model.item_bias[item])
        for k in range(model.rank):
            pk, qk = p[k], q[k]
            p[k] += lr * (err * qk - reg * pk)
            q[k] += lr * (err * pk - reg * qk)
    return total_sq / max(1, len(ratings))


def rmse(model: FactorModel, ratings: Sequence[Rating]) -> float:
    """Root mean squared prediction error over ``ratings``."""
    if not ratings:
        return 0.0
    total = sum(
        (r - model.predict(u, i)) ** 2 for u, i, r in ratings
    )
    return math.sqrt(total / len(ratings))
