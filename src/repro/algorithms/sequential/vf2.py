"""Subgraph isomorphism enumeration (VF2-style backtracking).

Finds every injective mapping of a small pattern graph into a data graph
that preserves vertex labels, edge presence/direction and (optionally)
edge labels. Candidate ordering and pruning follow VF2's connectivity
heuristic: the next pattern vertex is one adjacent to the partial match,
and its candidates are enumerated from the already-matched neighborhood
rather than the whole graph, which keeps the search local.

Used sequentially as PEval for SubIso and by the GPAR matcher.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterator

from repro.graph.digraph import Graph

VertexId = Hashable
Match = dict[VertexId, VertexId]


def find_subgraph_isomorphisms(
    pattern: Graph,
    graph: Graph,
    max_matches: int | None = None,
    anchor: tuple[VertexId, VertexId] | None = None,
    node_filter: Callable[[VertexId, VertexId], bool] | None = None,
    match_edge_labels: bool = True,
) -> list[Match]:
    """Enumerate subgraph-isomorphic embeddings of ``pattern`` in ``graph``.

    Args:
        pattern: pattern graph; vertex labels None act as wildcards.
        graph: data graph.
        max_matches: stop after this many embeddings (None = all).
        anchor: optional (pattern vertex, data vertex) pair to pin — used
            by the GPAR matcher to test one candidate customer.
        node_filter: extra predicate ``(pattern_v, data_v) -> bool``.
        match_edge_labels: require edge labels to agree when the pattern
            edge carries one (None = wildcard).

    Returns:
        List of ``{pattern vertex: data vertex}`` embeddings.
    """
    out: list[Match] = []
    for _ in iter_subgraph_isomorphisms(
        pattern,
        graph,
        collector=out,
        max_matches=max_matches,
        anchor=anchor,
        node_filter=node_filter,
        match_edge_labels=match_edge_labels,
    ):
        pass
    return out


def iter_subgraph_isomorphisms(
    pattern: Graph,
    graph: Graph,
    collector: list[Match] | None = None,
    max_matches: int | None = None,
    anchor: tuple[VertexId, VertexId] | None = None,
    node_filter: Callable[[VertexId, VertexId], bool] | None = None,
    match_edge_labels: bool = True,
) -> Iterator[Match]:
    """Generator form of :func:`find_subgraph_isomorphisms`."""
    order = _matching_order(pattern, anchor[0] if anchor else None)
    if not order:
        return
    state: Match = {}
    used: set[VertexId] = set()

    def compatible(pv: VertexId, gv: VertexId) -> bool:
        plabel = pattern.vertex_label(pv)
        if plabel is not None and graph.vertex_label(gv) != plabel:
            return False
        if node_filter is not None and not node_filter(pv, gv):
            return False
        if graph.out_degree(gv) < pattern.out_degree(pv):
            return False
        if graph.in_degree(gv) < pattern.in_degree(pv):
            return False
        # Every already-matched pattern neighbor must be consistent.
        for pchild in pattern.out_neighbors(pv):
            if pchild in state:
                if not graph.has_edge(gv, state[pchild]):
                    return False
                if match_edge_labels and not _edge_label_ok(
                    pattern, graph, pv, pchild, gv, state[pchild]
                ):
                    return False
        for pparent in pattern.in_neighbors(pv):
            if pparent in state:
                if not graph.has_edge(state[pparent], gv):
                    return False
                if match_edge_labels and not _edge_label_ok(
                    pattern, graph, pparent, pv, state[pparent], gv
                ):
                    return False
        return True

    def candidates(pv: VertexId) -> Iterator[VertexId]:
        if anchor is not None and pv == anchor[0]:
            yield anchor[1]
            return
        # Prefer expanding from matched neighbors (VF2 locality).
        for pchild in pattern.out_neighbors(pv):
            if pchild in state:
                yield from graph.in_neighbors(state[pchild])
                return
        for pparent in pattern.in_neighbors(pv):
            if pparent in state:
                yield from graph.out_neighbors(state[pparent])
                return
        yield from graph.vertices()

    found = 0

    def backtrack(depth: int) -> Iterator[Match]:
        nonlocal found
        if max_matches is not None and found >= max_matches:
            return
        if depth == len(order):
            found += 1
            match = dict(state)
            if collector is not None:
                collector.append(match)
            yield match
            return
        pv = order[depth]
        seen: set[VertexId] = set()
        for gv in candidates(pv):
            if gv in used or gv in seen:
                continue
            seen.add(gv)
            if not compatible(pv, gv):
                continue
            state[pv] = gv
            used.add(gv)
            yield from backtrack(depth + 1)
            del state[pv]
            used.discard(gv)
            if max_matches is not None and found >= max_matches:
                return

    yield from backtrack(0)


def _edge_label_ok(
    pattern: Graph,
    graph: Graph,
    p_src: VertexId,
    p_dst: VertexId,
    g_src: VertexId,
    g_dst: VertexId,
) -> bool:
    wanted = pattern.edge_label(p_src, p_dst)
    if wanted is None:
        return True
    return graph.edge_label(g_src, g_dst) == wanted


def _matching_order(
    pattern: Graph, start: VertexId | None
) -> list[VertexId]:
    """Connectivity-first ordering: each vertex adjacent to a prior one."""
    vertices = list(pattern.vertices())
    if not vertices:
        return []
    if start is None:
        start = max(vertices, key=lambda v: pattern.degree(v))
    order = [start]
    placed = {start}
    while len(order) < len(vertices):
        frontier = [
            v
            for v in vertices
            if v not in placed
            and any(u in placed for u in pattern.neighbors(v))
        ]
        if not frontier:  # disconnected pattern: start a new component
            frontier = [v for v in vertices if v not in placed]
        nxt = max(frontier, key=lambda v: pattern.degree(v))
        order.append(nxt)
        placed.add(nxt)
    return order
