"""Connected components: sequential PEval/IncEval pair for CC.

``connected_components`` labels every vertex with the minimum vertex id
of its (weakly) connected component using union-find — a stock
sequential algorithm. ``incremental_min_labels`` repairs labels after a
batch of border labels decreased, by BFS from the changed vertices —
bounded by the region whose labels actually change.

Vertex ids must be totally ordered (ints in all bundled datasets);
labels are component minima so the distributed min-aggregation converges
to the global minimum per component.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Mapping, MutableMapping

from repro.graph.digraph import Graph
from repro.utils.dsu import DisjointSet

VertexId = Hashable


def connected_components(graph: Graph) -> dict[VertexId, VertexId]:
    """Label each vertex with the min id in its weakly-connected component."""
    dsu = DisjointSet(graph.vertices())
    for edge in graph.edges():
        dsu.union(edge.src, edge.dst)
    minimum: dict[VertexId, VertexId] = {}
    for v in graph.vertices():
        root = dsu.find(v)
        if root not in minimum or v < minimum[root]:
            minimum[root] = v
    return {v: minimum[dsu.find(v)] for v in graph.vertices()}


def incremental_min_labels(
    graph: Graph,
    labels: MutableMapping[VertexId, VertexId],
    decreased: Mapping[VertexId, VertexId],
) -> tuple[dict[VertexId, VertexId], int]:
    """Propagate a batch of lowered labels through the local graph.

    Treats edges as undirected (weak connectivity). Returns (changes,
    touched-vertex count).
    """
    queue: deque[VertexId] = deque()
    changes: dict[VertexId, VertexId] = {}
    touched = 0
    for v, label in decreased.items():
        if v not in graph:
            continue
        current = labels.get(v)
        # A vertex the label map has never seen (a freshly created
        # mirror) must be recorded and propagated even when its label
        # equals the id-based fallback other code paths guess.
        if current is None or label < current:
            labels[v] = label
            changes[v] = label
            queue.append(v)
    while queue:
        v = queue.popleft()
        touched += 1
        label = labels[v]
        for u in graph.iter_neighbors(v):
            if label < labels.get(u, u):
                labels[u] = label
                changes[u] = label
                queue.append(u)
    return changes, touched
