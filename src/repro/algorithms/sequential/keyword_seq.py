"""Keyword search in graphs: bounded-distance keyword cover.

Semantics (distinct-root): a query is a set of keywords and a radius
``r``. A vertex ``v`` *covers* keyword ``k`` at distance ``d`` if some
vertex holding ``k`` is reachable from ``v`` along out-edges within
``d <= r`` hops. Answer roots are vertices covering *every* keyword,
ranked by total distance — the classic BANKS/BLINKS-style rooted
semantics reduced to its distance core.

A vertex holds a keyword when the keyword appears in its label or in its
``keywords``/``name`` properties.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Mapping

from repro.graph.digraph import Graph

VertexId = Hashable

#: Sentinel for "keyword not reachable within the radius".
UNREACHED = float("inf")


def holds_keyword(graph: Graph, v: VertexId, keyword: str) -> bool:
    """True if vertex ``v`` carries ``keyword`` in label or properties."""
    keyword = keyword.lower()
    label = graph.vertex_label(v)
    if label is not None and keyword == label.lower():
        return True
    props = graph.vertex_props(v)
    words = props.get("keywords")
    if isinstance(words, (list, tuple, set, frozenset)) and any(
        keyword == str(w).lower() for w in words
    ):
        return True
    name = props.get("name")
    return name is not None and keyword == str(name).lower()


def keyword_distances(
    graph: Graph,
    keyword: str,
    radius: int,
    seeds: Mapping[VertexId, float] | None = None,
    known: Mapping[VertexId, float] | None = None,
    scan_holders: bool = True,
) -> tuple[dict[VertexId, float], int]:
    """Distance from each vertex to the nearest holder of ``keyword``.

    Backward BFS: holders are at distance 0; a vertex is at distance
    ``d+1`` if an out-neighbor is at ``d``. ``seeds`` inject externally
    known distances (mirror update parameters); ``known`` suppresses
    re-deriving distances that did not improve. Search stops at
    ``radius``.

    ``scan_holders=False`` skips the O(|V|) holder scan — incremental
    callers whose ``known`` map already contains every holder at
    distance 0 must disable it, or the scan alone would make each
    incremental round cost Θ(|F|) regardless of the change size.

    Returns (improvements, visited count).
    """
    prior = known or {}
    queue: deque[tuple[VertexId, float]] = deque()
    updates: dict[VertexId, float] = {}
    if scan_holders:
        for v in graph.vertices():
            if (
                holds_keyword(graph, v, keyword)
                and 0.0 < prior.get(v, UNREACHED)
            ):
                updates[v] = 0.0
                queue.append((v, 0.0))
    for v, d in (seeds or {}).items():
        if (
            v in graph
            and d <= radius
            and d < prior.get(v, UNREACHED)
            and d < updates.get(v, UNREACHED)
        ):
            updates[v] = d
            queue.append((v, d))
    visited = 0
    while queue:
        v, d = queue.popleft()
        if d > updates.get(v, prior.get(v, UNREACHED)):
            continue  # stale entry
        visited += 1
        if d >= radius:
            continue
        for u in graph.in_neighbors(v):
            nd = d + 1
            if nd < updates.get(u, prior.get(u, UNREACHED)):
                updates[u] = nd
                queue.append((u, nd))
    return updates, visited


def keyword_cover_roots(
    graph: Graph, keywords: Iterable[str], radius: int
) -> dict[VertexId, float]:
    """Sequential oracle: root vertex -> total distance, all keywords."""
    keywords = list(keywords)
    per_keyword: list[dict[VertexId, float]] = []
    for k in keywords:
        updates, _ = keyword_distances(graph, k, radius)
        per_keyword.append(updates)
    roots: dict[VertexId, float] = {}
    for v in graph.vertices():
        dists = [d.get(v, UNREACHED) for d in per_keyword]
        if all(x <= radius for x in dists):
            roots[v] = sum(dists)
    return roots
