"""Dijkstra's algorithm — the paper's PEval for SSSP (Example 1).

The multi-seed form computes, for every vertex, the least cost of
reaching it from any seed given the seeds' starting costs. PEval seeds
with ``{source: 0}``; IncEval seeds with the border vertices whose
update parameters just decreased — the same routine serves both, which
is exactly the reuse the PIE model advertises.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.graph.digraph import Graph
from repro.utils.heap import IndexedHeap

VertexId = Hashable

#: Distance of unreachable vertices.
INF = float("inf")


def dijkstra(
    graph: Graph,
    seeds: Mapping[VertexId, float],
    known: Mapping[VertexId, float] | None = None,
    heap_factory=IndexedHeap,
) -> tuple[dict[VertexId, float], int]:
    """Multi-seed Dijkstra with optional prior distances.

    Args:
        graph: the (fragment-local) graph.
        seeds: starting vertices and their starting costs.
        known: previously settled distances; a vertex is only re-settled
            (and its edges only re-relaxed) if the new cost improves on
            ``known`` — this is what makes the incremental call *bounded*
            by the affected region instead of the fragment size.
        heap_factory: priority-queue implementation —
            :class:`~repro.utils.heap.IndexedHeap` (default) or
            :class:`~repro.utils.pairing_heap.PairingHeap`, the
            Fredman–Tarjan-class structure the paper cites.

    Returns:
        (distance updates, settled count). ``distance updates`` contains
        every vertex whose distance improved (including seeds that did).
    """
    dist: dict[VertexId, float] = {}
    prior = known or {}
    heap = heap_factory()
    for v, cost in seeds.items():
        if v in graph and cost < prior.get(v, INF):
            heap.push_if_lower(v, cost)
    settled = 0
    while heap:
        v, cost = heap.pop()
        if cost >= dist.get(v, prior.get(v, INF)):
            continue
        dist[v] = cost
        settled += 1
        # iter_out streams (dst, weight) pairs straight off the store —
        # for CSR that's a zero-copy walk of the row arrays
        for dst, weight in graph.iter_out(v):
            candidate = cost + weight
            best = dist.get(dst, prior.get(dst, INF))
            if candidate < best:
                heap.push_if_lower(dst, candidate)
    return dist, settled


def single_source(graph: Graph, source: VertexId) -> dict[VertexId, float]:
    """Classic SSSP from one source; unreachable vertices get ``inf``."""
    updates, _ = dijkstra(graph, {source: 0.0})
    out = {v: INF for v in graph.vertices()}
    out.update(updates)
    return out
