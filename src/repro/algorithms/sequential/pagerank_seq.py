"""PageRank by power iteration (sequential oracle + extension program)."""

from __future__ import annotations

from typing import Hashable

from repro.graph.digraph import Graph

VertexId = Hashable


def pagerank(
    graph: Graph,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iter: int = 200,
) -> dict[VertexId, float]:
    """Standard PageRank; dangling mass is redistributed uniformly.

    Ranks are normalized to sum to 1.
    """
    n = graph.num_vertices
    if n == 0:
        return {}
    rank = {v: 1.0 / n for v in graph.vertices()}
    for _ in range(max_iter):
        nxt = {v: (1.0 - damping) / n for v in graph.vertices()}
        dangling = 0.0
        for v in graph.vertices():
            deg = graph.out_degree(v)
            if deg == 0:
                dangling += rank[v]
                continue
            share = damping * rank[v] / deg
            for u in graph.out_neighbors(v):
                nxt[u] += share
        if dangling:
            spread = damping * dangling / n
            for v in nxt:
                nxt[v] += spread
        delta = sum(abs(nxt[v] - rank[v]) for v in nxt)
        rank = nxt
        if delta < tol:
            break
    return rank
