"""Incremental SSSP — the paper's IncEval for SSSP (Example 1).

Ramalingam & Reps' incremental shortest-path algorithm, specialized to
the decrease-only case that arises in GRAPE's SSSP fixed point (update
parameters are monotonically non-increasing under ``min``): when a batch
of vertices' distances drop, re-run Dijkstra seeded at exactly those
vertices against the current distance map. The cost is bounded by the
size of the *affected region* (|M| + |ΔO|), not the fragment — the
"bounded IncEval" property the paper highlights.
"""

from __future__ import annotations

from typing import Hashable, Mapping, MutableMapping

from repro.algorithms.sequential.dijkstra import INF, dijkstra
from repro.graph.digraph import Graph

VertexId = Hashable


def incremental_sssp(
    graph: Graph,
    dist: MutableMapping[VertexId, float],
    decreased: Mapping[VertexId, float],
) -> tuple[dict[VertexId, float], int]:
    """Apply a batch of distance decreases and repair ``dist`` in place.

    Args:
        graph: fragment-local graph.
        dist: current distance map (mutated with improvements).
        decreased: vertices whose distance just dropped, with new values.

    Returns:
        (the changes applied, number of settled vertices) — ``changes``
        is ΔO in the paper's notation, and ``settled`` is the work
        measure used by the bounded-IncEval experiment.
    """
    seeds = {
        v: cost
        for v, cost in decreased.items()
        if cost < dist.get(v, INF)
    }
    if not seeds:
        return {}, 0
    updates, settled = dijkstra(graph, seeds, known=dist)
    dist.update(updates)
    return updates, settled
