"""PIE program for single-source shortest paths (the paper's Example 1).

* **PEval** is "our familiar Dijkstra's algorithm" run on the local
  fragment, with an integer/float variable ``x_v`` per border node and
  aggregate function ``min`` declared — the only changes to the textbook
  code.
* **IncEval** is the incremental shortest-path algorithm of Ramalingam &
  Reps, seeded by the border variables whose values decreased (``M_i``).
  It is *bounded*: work tracks |M_i| + |ΔO_i| (measured in
  :attr:`SSSPProgram.work_log`), not |F_i|.
* **Assemble** takes the union of partial results, keeping the minimum
  ``x_v`` per vertex.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.algorithms.sequential.dijkstra import INF, dijkstra
from repro.algorithms.sequential.inc_sssp import incremental_sssp
from repro.core.aggregators import MIN
from repro.core.pie import ParamSpec, PIEProgram
from repro.core.update_params import UpdateParams
from repro.graph.fragment import Fragment

VertexId = Hashable

Partial = dict  # vertex -> best known distance in this fragment


@dataclass(frozen=True)
class SSSPQuery:
    """Shortest distances from ``source`` to every vertex."""

    source: VertexId


class SSSPProgram(PIEProgram[SSSPQuery, Partial, dict]):
    """Dijkstra + incremental SSSP + min-union, as a PIE program."""

    name = "sssp"

    #: MIN aggregation is decreasing-monotone, so SSSP is eligible for
    #: barrier-relaxed supersteps (verified by grape-lint GRP6xx).
    relaxed = True

    def __init__(self) -> None:
        #: (phase, fragment id, settled-vertex count) per call — the raw
        #: data behind the bounded-IncEval experiment (E5).
        self.work_log: list[tuple[str, int, int]] = []

    def param_spec(self, query: SSSPQuery) -> ParamSpec:
        return ParamSpec(aggregator=MIN, default=INF)

    def peval(
        self, fragment: Fragment, query: SSSPQuery, params: UpdateParams
    ) -> Partial:
        seeds: dict[VertexId, float] = {}
        if query.source in fragment.graph:
            seeds[query.source] = 0.0
        dist, settled = dijkstra(fragment.graph, seeds)
        self.work_log.append(("peval", fragment.fid, settled))
        for v in fragment.border:
            d = dist.get(v, INF)
            if d < INF:
                params.improve(v, d)
        return dist

    def inceval(
        self,
        fragment: Fragment,
        query: SSSPQuery,
        partial: Partial,
        params: UpdateParams,
        changed: set[VertexId],
    ) -> Partial:
        decreased = {v: params.get(v) for v in changed}
        updates, settled = incremental_sssp(fragment.graph, partial, decreased)
        self.work_log.append(("inceval", fragment.fid, settled))
        for v, d in updates.items():
            if v in fragment.inner_border or v in fragment.mirrors:
                params.improve(v, d)
        return partial

    def on_graph_update(
        self,
        fragment: Fragment,
        query: SSSPQuery,
        partial: Partial,
        params: UpdateParams,
        delta,
    ) -> Partial:
        """ΔG hook: safe ops can only shorten paths (decrease-only).

        Inserted or weight-decreased edges ``u -> v`` offer
        ``dist(u) + w`` to ``v``; the bounded incremental algorithm
        repairs the affected region. Deletions never arrive here — they
        are classified unsafe and repaired via :meth:`repair_partial`.
        """
        offers: dict[VertexId, float] = {}
        for op in delta:
            if op.kind == "delete":
                continue
            du = partial.get(op.src, INF)
            if du < INF:
                candidate = du + op.weight
                if candidate < offers.get(op.dst, INF):
                    offers[op.dst] = candidate
        updates, settled = incremental_sssp(fragment.graph, partial, offers)
        self.work_log.append(("update", fragment.fid, settled))
        for v, d in updates.items():
            if v in fragment.inner_border or v in fragment.mirrors:
                params.improve(v, d)
        return partial

    def delta_seeds(
        self, fragment: Fragment, query: SSSPQuery, partial: Partial, ops
    ) -> set:
        """Vertices whose distance may have routed through an unsafe op.

        An endpoint is affected only when the lost/lengthened edge was
        *tight* — ``dist(dst) == dist(src) + w`` — i.e. it could have
        carried a shortest path; a slack edge never did. When the old
        weight is unknown the endpoint is seeded conservatively. A
        target that vanished from the local graph (pruned mirror) is
        still seeded when a stale partial entry remains — otherwise its
        old distance would leak back through the min-union Assemble.
        """
        seeds: set = set()
        directed = fragment.graph.directed
        for op in ops:
            old_w = op.weight if op.kind == "delete" else op.old_weight
            pairs = [(op.src, op.dst)]
            if not directed:
                pairs.append((op.dst, op.src))
            for u, v in pairs:
                if not fragment.graph.has_vertex(v):
                    # The op pruned this mirror: once it leaves known_by,
                    # no future invalidation can reach this fragment, so
                    # its stale partial entry must be discarded *now* or
                    # it leaks through the min-union Assemble forever.
                    if v in partial:
                        seeds.add(v)
                    continue
                dv = partial.get(v, INF)
                if dv == INF:
                    continue  # never reached: nothing to invalidate
                du = partial.get(u, INF)
                if old_w is None or dv == du + old_w:
                    seeds.add(v)
        return seeds

    def invalidated_region(
        self, fragment: Fragment, query: SSSPQuery, partial: Partial,
        seeds: set,
    ) -> set:
        """Closure of ``seeds`` over *tight* out-edges only.

        A distance can only depend on an invalidated vertex through an
        edge that lies on a shortest path (``dist(v) >= dist(u) + w``);
        slack edges carry no dependency, which keeps the region — and
        hence the repair — proportional to the true affected subtree
        instead of the whole reachable set.

        The test is ``>=`` rather than ``==`` because the fragments are
        already mutated when the closure runs: an edge whose weight was
        *decreased* by a safe op in the same batch may have been tight
        under its old weight (``dist(v) == dist(u) + w_old``), which now
        reads as ``dist(v) > dist(u) + w_new``. At a converged fixpoint
        every unchanged edge satisfies ``dist(v) <= dist(u) + w``, so
        ``>=`` degenerates to the exact tightness test when no weight in
        the batch decreased — the region never over-grows on pure
        deletions.
        """
        region = set(seeds)
        stack = [v for v in seeds if fragment.graph.has_vertex(v)]
        while stack:
            u = stack.pop()
            du = partial.get(u, INF)
            if du == INF:
                continue
            for dst, weight in fragment.graph.iter_out(u):
                if dst in region:
                    continue
                if partial.get(dst, INF) >= du + weight:
                    region.add(dst)
                    stack.append(dst)
        return region

    def repair_partial(
        self,
        fragment: Fragment,
        query: SSSPQuery,
        partial: Partial,
        params: UpdateParams,
        region: set,
    ) -> Partial:
        """Re-derive an invalidated region's distances from its boundary.

        Region entries are discarded, then re-seeded from the query
        source (if invalidated) and from in-edges whose tail lies
        *outside* the region — those distances are still trusted. The
        IncEval fixpoint afterwards folds in whatever other fragments
        re-derive.
        """
        for v in region:
            partial.pop(v, None)
        seeds: dict[VertexId, float] = {}
        if query.source in region and query.source in fragment.graph:
            seeds[query.source] = 0.0
        for v in region:
            if not fragment.graph.has_vertex(v):
                continue
            best = seeds.get(v, INF)
            for src, weight in fragment.graph.iter_in(v):
                if src in region:
                    continue
                du = partial.get(src, INF)
                if du < INF and du + weight < best:
                    best = du + weight
            if best < INF:
                seeds[v] = best
        updates, settled = incremental_sssp(fragment.graph, partial, seeds)
        self.work_log.append(("repair", fragment.fid, settled))
        for v, d in updates.items():
            if v in fragment.inner_border or v in fragment.mirrors:
                params.improve(v, d)
        return partial

    def assemble(
        self, query: SSSPQuery, partials: Sequence[Partial]
    ) -> dict[VertexId, float]:
        result: dict[VertexId, float] = {}
        for partial in partials:
            for v, d in partial.items():
                if d < result.get(v, INF):
                    result[v] = d
        return result
