"""PIE program for single-source shortest paths (the paper's Example 1).

* **PEval** is "our familiar Dijkstra's algorithm" run on the local
  fragment, with an integer/float variable ``x_v`` per border node and
  aggregate function ``min`` declared — the only changes to the textbook
  code.
* **IncEval** is the incremental shortest-path algorithm of Ramalingam &
  Reps, seeded by the border variables whose values decreased (``M_i``).
  It is *bounded*: work tracks |M_i| + |ΔO_i| (measured in
  :attr:`SSSPProgram.work_log`), not |F_i|.
* **Assemble** takes the union of partial results, keeping the minimum
  ``x_v`` per vertex.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.algorithms.sequential.dijkstra import INF, dijkstra
from repro.algorithms.sequential.inc_sssp import incremental_sssp
from repro.core.aggregators import MIN
from repro.core.pie import ParamSpec, PIEProgram
from repro.core.update_params import UpdateParams
from repro.graph.fragment import Fragment

VertexId = Hashable

Partial = dict  # vertex -> best known distance in this fragment


@dataclass(frozen=True)
class SSSPQuery:
    """Shortest distances from ``source`` to every vertex."""

    source: VertexId


class SSSPProgram(PIEProgram[SSSPQuery, Partial, dict]):
    """Dijkstra + incremental SSSP + min-union, as a PIE program."""

    name = "sssp"

    def __init__(self) -> None:
        #: (phase, fragment id, settled-vertex count) per call — the raw
        #: data behind the bounded-IncEval experiment (E5).
        self.work_log: list[tuple[str, int, int]] = []

    def param_spec(self, query: SSSPQuery) -> ParamSpec:
        return ParamSpec(aggregator=MIN, default=INF)

    def peval(
        self, fragment: Fragment, query: SSSPQuery, params: UpdateParams
    ) -> Partial:
        seeds: dict[VertexId, float] = {}
        if query.source in fragment.graph:
            seeds[query.source] = 0.0
        dist, settled = dijkstra(fragment.graph, seeds)
        self.work_log.append(("peval", fragment.fid, settled))
        for v in fragment.border:
            d = dist.get(v, INF)
            if d < INF:
                params.improve(v, d)
        return dist

    def inceval(
        self,
        fragment: Fragment,
        query: SSSPQuery,
        partial: Partial,
        params: UpdateParams,
        changed: set[VertexId],
    ) -> Partial:
        decreased = {v: params.get(v) for v in changed}
        updates, settled = incremental_sssp(fragment.graph, partial, decreased)
        self.work_log.append(("inceval", fragment.fid, settled))
        for v, d in updates.items():
            if v in fragment.inner_border or v in fragment.mirrors:
                params.improve(v, d)
        return partial

    def on_graph_update(
        self,
        fragment: Fragment,
        query: SSSPQuery,
        partial: Partial,
        params: UpdateParams,
        insertions,
    ) -> Partial:
        """ΔG hook: inserted edges can only shorten paths (decrease-only).

        Each new edge ``u -> v`` offers ``dist(u) + w`` to ``v``; the
        bounded incremental algorithm repairs the affected region.
        """
        offers: dict[VertexId, float] = {}
        for ins in insertions:
            du = partial.get(ins.src, INF)
            if du < INF:
                candidate = du + ins.weight
                if candidate < offers.get(ins.dst, INF):
                    offers[ins.dst] = candidate
        updates, settled = incremental_sssp(fragment.graph, partial, offers)
        self.work_log.append(("update", fragment.fid, settled))
        for v, d in updates.items():
            if v in fragment.inner_border or v in fragment.mirrors:
                params.improve(v, d)
        return partial

    def assemble(
        self, query: SSSPQuery, partials: Sequence[Partial]
    ) -> dict[VertexId, float]:
        result: dict[VertexId, float] = {}
        for partial in partials:
            for v, d in partial.items():
                if d < result.get(v, INF):
                    result[v] = d
        return result
