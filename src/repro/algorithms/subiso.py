"""PIE program for graph pattern matching via subgraph isomorphism.

SubIso is locality-bounded: every embedding of a pattern lies within
``d`` hops of the image of any designated pattern vertex (the *pivot*),
where ``d`` is the pattern's eccentricity from the pivot. GRAPE exploits
this: fragments are expanded with their d-hop neighborhood at load time
(:func:`repro.graph.fragment.expand_fragments`), after which PEval — a
stock VF2 enumeration — finds *every* embedding whose pivot image is an
owned vertex. No border variables change, so the fixed point is reached
after PEval alone and Assemble concatenates the disjoint match sets.

Deduplication is structural: each embedding is claimed exactly once, by
the owner of its pivot image.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.algorithms.sequential.vf2 import find_subgraph_isomorphisms
from repro.core.aggregators import SET_UNION
from repro.core.pie import ParamSpec, PIEProgram
from repro.core.update_params import UpdateParams
from repro.errors import ProgramError
from repro.graph.digraph import Graph
from repro.graph.fragment import Fragment

VertexId = Hashable

Partial = list  # list of {pattern vertex: data vertex} matches


@dataclass(frozen=True)
class SubIsoQuery:
    """Enumerate embeddings of ``pattern``; ``pivot`` anchors ownership.

    ``max_matches`` bounds the global number of embeddings (None = all);
    the bound is enforced per fragment, then again at Assemble.
    """

    pattern: Graph
    pivot: VertexId
    max_matches: int | None = None

    def radius(self) -> int:
        """Pattern eccentricity from the pivot (undirected hops).

        This is the d-hop expansion the fragments need for PEval to see
        every embedding whose pivot image it owns.
        """
        if self.pivot not in self.pattern:
            raise ProgramError(f"pivot {self.pivot!r} not in pattern")
        dist = {self.pivot: 0}
        queue = deque([self.pivot])
        while queue:
            v = queue.popleft()
            for u in self.pattern.neighbors(v):
                if u not in dist:
                    dist[u] = dist[v] + 1
                    queue.append(u)
        if len(dist) < self.pattern.num_vertices:
            raise ProgramError(
                "pattern must be connected for pivot-anchored matching"
            )
        return max(dist.values(), default=0)


@dataclass
class SubIsoProgram(PIEProgram[SubIsoQuery, Partial, list]):
    """VF2 on d-hop-expanded fragments, as a PIE program."""

    name = "subiso"
    work_log: list = field(default_factory=list)

    def param_spec(self, query: SubIsoQuery) -> ParamSpec:
        return ParamSpec(aggregator=SET_UNION, default=None)

    def declare_params(
        self, fragment: Fragment, query: SubIsoQuery, params: UpdateParams
    ) -> None:
        """SubIso exchanges no border variables (locality is pre-shipped)."""

    def peval(
        self, fragment: Fragment, query: SubIsoQuery, params: UpdateParams
    ) -> Partial:
        matches = [
            m
            for m in find_subgraph_isomorphisms(
                query.pattern,
                fragment.graph,
                max_matches=query.max_matches,
                node_filter=lambda pv, gv: (
                    pv != query.pivot or gv in fragment.owned
                ),
            )
        ]
        self.work_log.append(("peval", fragment.fid, len(matches)))
        return matches

    def inceval(
        self,
        fragment: Fragment,
        query: SubIsoQuery,
        partial: Partial,
        params: UpdateParams,
        changed: set[VertexId],
    ) -> Partial:
        return partial  # nothing to do: no update parameters change

    def assemble(
        self, query: SubIsoQuery, partials: Sequence[Partial]
    ) -> list[dict]:
        out: list[dict] = []
        for partial in partials:
            out.extend(partial)
            if query.max_matches is not None and len(out) >= query.max_matches:
                return out[: query.max_matches]
        return out
