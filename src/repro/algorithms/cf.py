"""PIE program for collaborative filtering (CF) by matrix factorization.

Training data is a bipartite rating graph (users -> items, edge weight =
rating). Users are partitioned; items touched by several fragments
appear there as mirrors. Each fragment trains the latent-factor model on
its local ratings (SGD epochs); the *item* factor vectors are the update
parameters — after each epoch a fragment publishes its items' vectors,
and the aggregate function blends conflicting replicas by convex
averaging (classic parameter-averaging distributed SGD).

CF is the demo's example of a *non-monotonic* PIE program: the Assurance
Theorem's order condition does not apply, and termination comes from the
epoch budget instead — after ``epochs`` local passes a fragment stops
publishing, parameters stop changing, and the engine reaches its fixed
point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.algorithms.sequential.cf_seq import (
    FactorModel,
    Rating,
    rmse,
    sgd_epoch,
)
from repro.core.aggregators import Aggregator
from repro.core.partial_order import UNORDERED
from repro.core.pie import ParamSpec, PIEProgram
from repro.core.update_params import UpdateParams
from repro.graph.fragment import Fragment
from repro.utils.rng import stable_hash

VertexId = Hashable


def _blend(cur: object, new: object) -> object:
    return tuple((a + b) / 2.0 for a, b in zip(cur, new))  # type: ignore[arg-type]


#: Convex blend of item-factor replicas (parameter averaging).
FACTOR_BLEND = Aggregator("factor-blend", _blend, UNORDERED)


@dataclass(frozen=True)
class CFQuery:
    """Train a rank-``rank`` MF model for ``epochs`` distributed epochs."""

    rank: int = 8
    epochs: int = 5
    lr: float = 0.02
    reg: float = 0.05
    seed: int = 7
    rating_label: str | None = "rate"


@dataclass
class CFPartial:
    """Worker-local training state."""

    model: FactorModel
    ratings: list[Rating]
    epochs_done: int = 0
    mse_history: list[float] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.mse_history is None:
            self.mse_history = []


@dataclass
class CFResult:
    """Assembled model + training diagnostics."""

    model: FactorModel
    train_rmse: float
    mse_curves: list[list[float]]


class CFProgram(PIEProgram[CFQuery, CFPartial, CFResult]):
    """Local SGD + parameter averaging of item factors, as PIE."""

    name = "cf"

    def param_spec(self, query: CFQuery) -> ParamSpec:
        return ParamSpec(aggregator=FACTOR_BLEND, default=None)

    def declare_params(
        self, fragment: Fragment, query: CFQuery, params: UpdateParams
    ) -> None:
        # Parameters live on shared *items* only (border vertices that
        # carry ratings); user vertices never cross fragments' models.
        items = {
            v
            for v in fragment.border
            if fragment.graph.vertex_label(v) == "item"
        }
        params.declare(items)

    # ------------------------------------------------------------------
    def _local_ratings(
        self, fragment: Fragment, query: CFQuery
    ) -> list[Rating]:
        ratings: list[Rating] = []
        for u in fragment.owned:
            if fragment.graph.vertex_label(u) != "user":
                continue
            for edge in fragment.graph.out_edges(u):
                if (
                    query.rating_label is None
                    or edge.label == query.rating_label
                ):
                    ratings.append((u, edge.dst, edge.weight))
        return ratings

    def _publish(
        self,
        fragment: Fragment,
        partial: CFPartial,
        params: UpdateParams,
    ) -> None:
        # Publish in a stable order: params.set replaces the replica
        # wholesale (FACTOR_BLEND is order-sensitive), and raw set
        # iteration varies across processes (grape-lint GRP306).
        for item in sorted(params.declared, key=stable_hash):
            vec = partial.model.item_factors.get(item)
            if vec is not None:
                params.set(item, tuple(vec))

    def _absorb(
        self, partial: CFPartial, params: UpdateParams, changed: set[VertexId]
    ) -> None:
        for item in changed:
            value = params.get(item)
            if value is not None and item in partial.model.item_factors:
                partial.model.item_factors[item] = list(value)

    def _train_one_epoch(self, partial: CFPartial, query: CFQuery) -> None:
        mse = sgd_epoch(
            partial.model,
            partial.ratings,
            lr=query.lr,
            reg=query.reg,
            seed=query.seed + partial.epochs_done,
        )
        partial.mse_history.append(mse)
        partial.epochs_done += 1

    # ------------------------------------------------------------------
    def peval(
        self, fragment: Fragment, query: CFQuery, params: UpdateParams
    ) -> CFPartial:
        ratings = self._local_ratings(fragment, query)
        model = FactorModel(rank=query.rank)
        if ratings:
            model.mean = sum(r for _, _, r in ratings) / len(ratings)
        model.ensure(
            (u for u, _, _ in ratings),
            (i for _, i, _ in ratings),
            seed=query.seed,
        )
        partial = CFPartial(model=model, ratings=ratings)
        if ratings:
            self._train_one_epoch(partial, query)
            if partial.epochs_done < query.epochs:
                self._publish(fragment, partial, params)
        return partial

    def inceval(
        self,
        fragment: Fragment,
        query: CFQuery,
        partial: CFPartial,
        params: UpdateParams,
        changed: set[VertexId],
    ) -> CFPartial:
        if not partial.ratings or partial.epochs_done >= query.epochs:
            return partial
        self._absorb(partial, params, changed)
        self._train_one_epoch(partial, query)
        if partial.epochs_done < query.epochs:
            self._publish(fragment, partial, params)
        return partial

    def assemble(
        self, query: CFQuery, partials: Sequence[CFPartial]
    ) -> CFResult:
        merged = FactorModel(rank=query.rank)
        counts: dict[VertexId, int] = {}
        total_ratings: list[Rating] = []
        means: list[float] = []
        for partial in partials:
            if partial.ratings:
                means.append(partial.model.mean)
            total_ratings.extend(partial.ratings)
            merged.user_factors.update(partial.model.user_factors)
            merged.user_bias.update(partial.model.user_bias)
            for item, vec in partial.model.item_factors.items():
                if item in merged.item_factors:
                    n = counts[item]
                    old = merged.item_factors[item]
                    merged.item_factors[item] = [
                        (o * n + v) / (n + 1) for o, v in zip(old, vec)
                    ]
                    merged.item_bias[item] = (
                        merged.item_bias[item] * n + partial.model.item_bias[item]
                    ) / (n + 1)
                    counts[item] = n + 1
                else:
                    merged.item_factors[item] = list(vec)
                    merged.item_bias[item] = partial.model.item_bias[item]
                    counts[item] = 1
        merged.mean = sum(means) / len(means) if means else 0.0
        return CFResult(
            model=merged,
            train_rmse=rmse(merged, total_ratings),
            mse_curves=[p.mse_history for p in partials],
        )
