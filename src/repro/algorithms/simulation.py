"""PIE program for graph pattern matching via simulation (Sim).

The query is a labeled pattern graph; the answer is the *maximum
simulation relation* — for each pattern vertex, the set of data vertices
that simulate it. Border variables carry each border vertex's candidate
set (which pattern vertices it may still match) under aggregate function
set-intersection; candidate sets only shrink, so the computation is
monotonic and terminates (Assurance Theorem).

PEval refines the label-based initial candidates over the local fragment,
treating mirror candidate sets as external assumptions. IncEval re-refines
only the region reachable (backwards) from mirrors whose assumptions
shrank — bounded by the affected area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.algorithms.sequential.simulation_seq import (
    initial_candidates,
    refine_simulation,
)
from repro.core.aggregators import SET_INTERSECT
from repro.core.pie import ParamSpec, PIEProgram
from repro.core.update_params import UpdateParams
from repro.graph.digraph import Graph
from repro.graph.fragment import Fragment

VertexId = Hashable

Partial = dict  # owned vertex -> frozenset of pattern vertices


@dataclass(frozen=True)
class SimQuery:
    """Maximum simulation of ``pattern`` in the data graph."""

    pattern: Graph


class SimProgram(PIEProgram[SimQuery, Partial, dict]):
    """Simulation refinement + incremental re-refinement, as PIE.

    With ``use_index=True`` PEval consults the Index Manager's label
    index to seed candidates only at vertices whose label occurs in the
    pattern — the "graph-level optimization" of Section 3 that
    vertex-centric models cannot express (every vertex must run). Falls
    back to the plain scan when the pattern contains wildcard labels.
    """

    name = "sim"

    def __init__(self, use_index: bool = False, index_manager=None) -> None:
        self.work_log: list[tuple[str, int, int]] = []
        self.use_index = use_index
        # The Index Manager normally belongs to the storage layer and is
        # populated when fragments are loaded (Fig. 2); passing a
        # pre-warmed manager keeps index construction out of query time.
        self._index_manager = index_manager

    def _initial_owned_candidates(
        self, fragment: Fragment, pattern: Graph
    ) -> Partial:
        labels = [pattern.vertex_label(u) for u in pattern.vertices()]
        if not self.use_index or any(lab is None for lab in labels):
            return initial_candidates(fragment.graph, pattern, fragment.owned)
        if self._index_manager is None:
            from repro.storage.index import IndexManager

            self._index_manager = IndexManager()
        index = self._index_manager.label_index(fragment.graph)
        by_label: dict[str, set] = {}
        for u in pattern.vertices():
            by_label.setdefault(pattern.vertex_label(u), set()).add(u)
        candidates: Partial = {}
        for label, pattern_vs in by_label.items():
            group = frozenset(pattern_vs)
            for v in index.lookup(label):
                if v in fragment.owned:
                    candidates[v] = candidates.get(v, frozenset()) | group
        return candidates

    def param_spec(self, query: SimQuery) -> ParamSpec:
        return ParamSpec(aggregator=SET_INTERSECT, default=None)

    def declare_params(
        self, fragment: Fragment, query: SimQuery, params: UpdateParams
    ) -> None:
        # Initial assumption: label-based candidates (computable by every
        # host, since fragments copy vertex labels onto mirrors).
        initial = initial_candidates(
            fragment.graph, query.pattern, fragment.border
        )
        params.declare(fragment.border, initial=initial)

    def peval(
        self, fragment: Fragment, query: SimQuery, params: UpdateParams
    ) -> Partial:
        candidates = self._initial_owned_candidates(fragment, query.pattern)
        frozen = {m: params.get(m) for m in fragment.mirrors}
        candidates, steps = refine_simulation(
            fragment.graph, query.pattern, candidates, frozen=frozen
        )
        self.work_log.append(("peval", fragment.fid, steps))
        for v in fragment.inner_border:
            params.improve(v, candidates.get(v, frozenset()))
        return candidates

    def inceval(
        self,
        fragment: Fragment,
        query: SimQuery,
        partial: Partial,
        params: UpdateParams,
        changed: set[VertexId],
    ) -> Partial:
        frozen = {m: params.get(m) for m in fragment.mirrors}
        partial, steps = refine_simulation(
            fragment.graph,
            query.pattern,
            partial,
            frozen=frozen,
            dirty=changed,
        )
        self.work_log.append(("inceval", fragment.fid, steps))
        # Candidate sets shrink anywhere in the refined region, so the
        # whole inner border is re-offered; improve() drops no-op writes.
        for v in fragment.inner_border:  # grape-lint: disable=GRP202
            params.improve(v, partial.get(v, frozenset()))
        return partial

    def assemble(
        self, query: SimQuery, partials: Sequence[Partial]
    ) -> dict[VertexId, set[VertexId]]:
        result: dict[VertexId, set[VertexId]] = {
            u: set() for u in query.pattern.vertices()
        }
        for partial in partials:
            for v, cands in partial.items():
                for u in cands:
                    result[u].add(v)
        return result
