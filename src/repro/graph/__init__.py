"""Graph substrate: property digraph, IO, generators, fragments, metrics."""

from repro.graph.digraph import Edge, Graph
from repro.graph.builder import GraphBuilder
from repro.graph.fragment import Fragment, FragmentedGraph, build_fragments
from repro.graph.properties import PropertyMap
from repro.graph.store import STORES, DictStore, GraphStore, make_store
from repro.graph.csr import CSRStore

__all__ = [
    "Edge",
    "Graph",
    "GraphBuilder",
    "Fragment",
    "FragmentedGraph",
    "build_fragments",
    "PropertyMap",
    "GraphStore",
    "DictStore",
    "CSRStore",
    "STORES",
    "make_store",
]
