"""Graph substrate: property digraph, IO, generators, fragments, metrics."""

from repro.graph.digraph import Edge, Graph
from repro.graph.builder import GraphBuilder
from repro.graph.fragment import Fragment, FragmentedGraph, build_fragments
from repro.graph.properties import PropertyMap

__all__ = [
    "Edge",
    "Graph",
    "GraphBuilder",
    "Fragment",
    "FragmentedGraph",
    "build_fragments",
    "PropertyMap",
]
