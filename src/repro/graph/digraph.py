"""The core directed property graph.

A :class:`Graph` is a simple directed graph (no parallel edges) with

* integer (or other hashable) vertex ids,
* an optional string *label* and a property dict per vertex,
* a float *weight* and optional string *label* per edge.

Both out- and in-adjacency are maintained so traversal algorithms
(Dijkstra, simulation, keyword search) and partitioners can walk edges in
either direction in O(degree). The structure is mutable; fragments and
views share no storage with the parent graph (copies are explicit), which
keeps worker-local state in the simulated cluster honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

from repro.errors import GraphError

VertexId = Hashable


@dataclass(frozen=True)
class Edge:
    """A directed edge ``src -> dst`` with weight and optional label."""

    src: VertexId
    dst: VertexId
    weight: float = 1.0
    label: str | None = None


class Graph:
    """Mutable directed property graph.

    Example::

        g = Graph()
        g.add_edge(1, 2, weight=3.0)
        g.add_vertex(3, label="person", name="ann")
        g.out_neighbors(1)      # -> [2]
        g.edge_weight(1, 2)     # -> 3.0
    """

    def __init__(self, directed: bool = True) -> None:
        self.directed = directed
        self._out: dict[VertexId, dict[VertexId, float]] = {}
        self._in: dict[VertexId, dict[VertexId, float]] = {}
        self._vlabel: dict[VertexId, str | None] = {}
        self._vprops: dict[VertexId, dict[str, object]] = {}
        self._elabel: dict[tuple[VertexId, VertexId], str] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(
        self,
        v: VertexId,
        label: str | None = None,
        **props: object,
    ) -> None:
        """Add vertex ``v`` (idempotent); label/props update existing."""
        if v not in self._out:
            self._out[v] = {}
            self._in[v] = {}
            self._vlabel[v] = label
        elif label is not None:
            self._vlabel[v] = label
        if props:
            self._vprops.setdefault(v, {}).update(props)

    def add_edge(
        self,
        src: VertexId,
        dst: VertexId,
        weight: float = 1.0,
        label: str | None = None,
    ) -> None:
        """Add (or overwrite) edge ``src -> dst``.

        Endpoints are created on demand. For an undirected graph the
        reverse edge is stored as well but counted once.
        """
        if weight < 0:
            raise GraphError(f"negative edge weight {weight} on {src}->{dst}")
        self.add_vertex(src)
        self.add_vertex(dst)
        fresh = dst not in self._out[src]
        self._out[src][dst] = weight
        self._in[dst][src] = weight
        if label is not None:
            self._elabel[(src, dst)] = label
        if not self.directed:
            self._out[dst][src] = weight
            self._in[src][dst] = weight
            if label is not None:
                self._elabel[(dst, src)] = label
        if fresh:
            self._num_edges += 1

    def remove_edge(self, src: VertexId, dst: VertexId) -> None:
        """Remove edge ``src -> dst``; GraphError if absent."""
        if src not in self._out or dst not in self._out[src]:
            raise GraphError(f"no edge {src}->{dst}")
        del self._out[src][dst]
        del self._in[dst][src]
        self._elabel.pop((src, dst), None)
        if not self.directed:
            del self._out[dst][src]
            del self._in[src][dst]
            self._elabel.pop((dst, src), None)
        self._num_edges -= 1

    def remove_vertex(self, v: VertexId) -> None:
        """Remove ``v`` and all incident edges; GraphError if absent."""
        if v not in self._out:
            raise GraphError(f"no vertex {v}")
        for dst in list(self._out[v]):
            self.remove_edge(v, dst)
        for src in list(self._in[v]):
            if src in self._out and v in self._out[src]:
                self.remove_edge(src, v)
        del self._out[v]
        del self._in[v]
        del self._vlabel[v]
        self._vprops.pop(v, None)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._out)

    @property
    def num_edges(self) -> int:
        """Number of (stored) edges."""
        return self._num_edges

    def __len__(self) -> int:
        return len(self._out)

    def __contains__(self, v: VertexId) -> bool:
        return v in self._out

    def has_vertex(self, v: VertexId) -> bool:
        """Whether vertex ``v`` exists."""
        return v in self._out

    def has_edge(self, src: VertexId, dst: VertexId) -> bool:
        """Whether edge ``src -> dst`` exists."""
        return src in self._out and dst in self._out[src]

    def vertices(self) -> Iterator[VertexId]:
        """Iterate all vertex ids."""
        return iter(self._out)

    def edges(self) -> Iterator[Edge]:
        """Iterate every stored directed edge (each once for directed)."""
        for src, nbrs in self._out.items():
            for dst, weight in nbrs.items():
                if not self.directed and repr(dst) < repr(src):
                    continue  # report each undirected edge once
                yield Edge(src, dst, weight, self._elabel.get((src, dst)))

    def out_neighbors(self, v: VertexId) -> list[VertexId]:
        """Targets of ``v``'s outgoing edges."""
        self._require(v)
        return list(self._out[v])

    def in_neighbors(self, v: VertexId) -> list[VertexId]:
        """Sources of ``v``'s incoming edges."""
        self._require(v)
        return list(self._in[v])

    def neighbors(self, v: VertexId) -> list[VertexId]:
        """Union of out- and in-neighbors (undirected adjacency)."""
        self._require(v)
        merged = dict.fromkeys(self._out[v])
        merged.update(dict.fromkeys(self._in[v]))
        return list(merged)

    def out_edges(self, v: VertexId) -> list[Edge]:
        """This vertex's outgoing edges."""
        self._require(v)
        return [
            Edge(v, dst, w, self._elabel.get((v, dst)))
            for dst, w in self._out[v].items()
        ]

    def in_edges(self, v: VertexId) -> list[Edge]:
        """Incoming edges of ``v``."""
        self._require(v)
        return [
            Edge(src, v, w, self._elabel.get((src, v)))
            for src, w in self._in[v].items()
        ]

    def out_degree(self, v: VertexId) -> int:
        """Number of outgoing edges of ``v``."""
        self._require(v)
        return len(self._out[v])

    def in_degree(self, v: VertexId) -> int:
        """Number of incoming edges of ``v``."""
        self._require(v)
        return len(self._in[v])

    def degree(self, v: VertexId) -> int:
        """Number of distinct neighbors of ``v`` (either direction)."""
        return len(self.neighbors(v))

    def edge_weight(self, src: VertexId, dst: VertexId) -> float:
        """Weight of edge ``src -> dst`` (GraphError if absent)."""
        if not self.has_edge(src, dst):
            raise GraphError(f"no edge {src}->{dst}")
        return self._out[src][dst]

    def edge_label(self, src: VertexId, dst: VertexId) -> str | None:
        """Label of edge ``src -> dst`` (GraphError if absent)."""
        if not self.has_edge(src, dst):
            raise GraphError(f"no edge {src}->{dst}")
        return self._elabel.get((src, dst))

    def vertex_label(self, v: VertexId) -> str | None:
        """Label of vertex ``v`` (GraphError if absent)."""
        self._require(v)
        return self._vlabel[v]

    def vertex_props(self, v: VertexId) -> dict[str, object]:
        """Property dict of vertex ``v`` (may be empty)."""
        self._require(v)
        return self._vprops.get(v, {})

    def vertices_with_label(self, label: str) -> list[VertexId]:
        """All vertices carrying ``label`` (linear scan; see storage.index)."""
        return [v for v, lab in self._vlabel.items() if lab == label]

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Deep-enough copy: structure and labels; props shallow-copied."""
        g = Graph(directed=self.directed)
        for v in self._out:
            g.add_vertex(v, self._vlabel[v], **self._vprops.get(v, {}))
        for src, nbrs in self._out.items():
            for dst, w in nbrs.items():
                if not self.directed and (dst, src) in g._elabel:
                    continue
                g.add_edge(src, dst, w, self._elabel.get((src, dst)))
        return g

    def subgraph(self, vertices: Iterable[VertexId]) -> "Graph":
        """Induced subgraph over ``vertices`` (copies labels/props)."""
        keep = set(vertices)
        g = Graph(directed=self.directed)
        for v in keep:
            self._require(v)
            g.add_vertex(v, self._vlabel[v], **self._vprops.get(v, {}))
        for src in keep:
            for dst, w in self._out[src].items():
                if dst in keep:
                    g.add_edge(src, dst, w, self._elabel.get((src, dst)))
        return g

    def reversed(self) -> "Graph":
        """Graph with every edge direction flipped."""
        g = Graph(directed=self.directed)
        for v in self._out:
            g.add_vertex(v, self._vlabel[v], **self._vprops.get(v, {}))
        for src, nbrs in self._out.items():
            for dst, w in nbrs.items():
                g.add_edge(dst, src, w, self._elabel.get((src, dst)))
        return g

    def as_undirected(self) -> "Graph":
        """Undirected copy (weights of antiparallel pairs: last wins)."""
        g = Graph(directed=False)
        for v in self._out:
            g.add_vertex(v, self._vlabel[v], **self._vprops.get(v, {}))
        for src, nbrs in self._out.items():
            for dst, w in nbrs.items():
                g.add_edge(src, dst, w, self._elabel.get((src, dst)))
        return g

    def __repr__(self) -> str:
        kind = "digraph" if self.directed else "graph"
        return f"<Graph {kind} |V|={self.num_vertices} |E|={self.num_edges}>"

    def _require(self, v: VertexId) -> None:
        if v not in self._out:
            raise GraphError(f"no vertex {v}")
