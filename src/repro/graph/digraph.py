"""The core directed property graph.

A :class:`Graph` is a simple directed graph (no parallel edges) with

* integer (or other hashable) vertex ids,
* an optional string *label* and a property dict per vertex,
* a float *weight* and optional string *label* per edge.

Both out- and in-adjacency are maintained so traversal algorithms
(Dijkstra, simulation, keyword search) and partitioners can walk edges in
either direction in O(degree). The structure is mutable; fragments and
views share no storage with the parent graph (copies are explicit), which
keeps worker-local state in the simulated cluster honest.

Storage is pluggable (``Graph(store=...)``): the graph itself is a thin
facade holding every compound rule — undirected double-writes, edge
counting, incident-edge cleanup, error raising — over a
:class:`repro.graph.store.GraphStore` that owns the flat layout. The
default ``"dict"`` store is the original adjacency-dict structure and the
byte-exact oracle; ``"csr"`` swaps in compact array-backed rows with a
delta-aware overlay (:mod:`repro.graph.csr`) behind the identical API
and iteration order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

from repro.errors import GraphError
from repro.graph.store import GraphStore, make_store

VertexId = Hashable


@dataclass(frozen=True)
class Edge:
    """A directed edge ``src -> dst`` with weight and optional label."""

    src: VertexId
    dst: VertexId
    weight: float = 1.0
    label: str | None = None


class Graph:
    """Mutable directed property graph.

    Example::

        g = Graph()
        g.add_edge(1, 2, weight=3.0)
        g.add_vertex(3, label="person", name="ann")
        g.out_neighbors(1)      # -> [2]
        g.edge_weight(1, 2)     # -> 3.0
    """

    def __init__(
        self,
        directed: bool = True,
        store: str | GraphStore | None = None,
    ) -> None:
        self.directed = directed
        self._store = make_store(store)
        self._num_edges = 0

    @property
    def store_kind(self) -> str:
        """Name of the backing store ("dict", "csr", ...)."""
        return self._store.kind

    @property
    def store(self) -> GraphStore:
        """The backing :class:`GraphStore` (for storage-aware tooling)."""
        return self._store

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(
        self,
        v: VertexId,
        label: str | None = None,
        **props: object,
    ) -> None:
        """Add vertex ``v`` (idempotent); label/props update existing."""
        if not self._store.add_vertex(v, label) and label is not None:
            self._store.set_vertex_label(v, label)
        if props:
            self._store.update_vertex_props(v, props)

    def add_edge(
        self,
        src: VertexId,
        dst: VertexId,
        weight: float = 1.0,
        label: str | None = None,
    ) -> None:
        """Add (or overwrite) edge ``src -> dst``.

        Endpoints are created on demand. For an undirected graph the
        reverse edge is stored as well but counted once.
        """
        if weight < 0:
            raise GraphError(f"negative edge weight {weight} on {src}->{dst}")
        self.add_vertex(src)
        self.add_vertex(dst)
        fresh = self._store.set_arc(src, dst, weight)
        if label is not None:
            self._store.set_arc_label(src, dst, label)
        if not self.directed:
            self._store.set_arc(dst, src, weight)
            if label is not None:
                self._store.set_arc_label(dst, src, label)
        if fresh:
            self._num_edges += 1

    def remove_edge(self, src: VertexId, dst: VertexId) -> None:
        """Remove edge ``src -> dst``; GraphError if absent."""
        if not self.has_edge(src, dst):
            raise GraphError(f"no edge {src}->{dst}")
        self._store.delete_arc(src, dst)
        if not self.directed:
            self._store.delete_arc(dst, src)
        self._num_edges -= 1

    def remove_vertex(self, v: VertexId) -> None:
        """Remove ``v`` and all incident edges; GraphError if absent."""
        self._require(v)
        for dst in self.out_neighbors(v):
            self.remove_edge(v, dst)
        for src in self.in_neighbors(v):
            if self.has_edge(src, v):
                self.remove_edge(src, v)
        self._store.drop_vertex(v)

    def compact(self) -> bool:
        """Fold any storage overlay into its base layout (True if it ran).

        A no-op for the dict store; for CSR this forces the side log
        back into fresh base arrays without waiting for the automatic
        threshold. Semantically invisible either way.
        """
        return self._store.compact()

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self._store.num_vertices()

    @property
    def num_edges(self) -> int:
        """Number of (stored) edges."""
        return self._num_edges

    def __len__(self) -> int:
        return self._store.num_vertices()

    def __contains__(self, v: VertexId) -> bool:
        return self._store.has_vertex(v)

    def has_vertex(self, v: VertexId) -> bool:
        """Whether vertex ``v`` exists."""
        return self._store.has_vertex(v)

    def has_edge(self, src: VertexId, dst: VertexId) -> bool:
        """Whether edge ``src -> dst`` exists."""
        return self._store.has_vertex(src) and self._store.has_arc(src, dst)

    def vertices(self) -> Iterator[VertexId]:
        """Iterate all vertex ids."""
        return self._store.vertices()

    def edges(self) -> Iterator[Edge]:
        """Iterate every stored directed edge (each once for directed)."""
        for src in self._store.vertices():
            for dst, weight, label in self._store.out_items_labeled(src):
                if not self.directed and repr(dst) < repr(src):
                    continue  # report each undirected edge once
                yield Edge(src, dst, weight, label)

    def out_neighbors(self, v: VertexId) -> list[VertexId]:
        """Targets of ``v``'s outgoing edges."""
        self._require(v)
        return [dst for dst, _ in self._store.out_items(v)]

    def in_neighbors(self, v: VertexId) -> list[VertexId]:
        """Sources of ``v``'s incoming edges."""
        self._require(v)
        return [src for src, _ in self._store.in_items(v)]

    def neighbors(self, v: VertexId) -> list[VertexId]:
        """Union of out- and in-neighbors (undirected adjacency)."""
        return list(self.iter_neighbors(v))

    def iter_out(self, v: VertexId) -> Iterator[tuple[VertexId, float]]:
        """Lazy ``(dst, weight)`` over ``v``'s out-edges (no list built).

        The zero-copy hot path for PEval/IncEval inner loops: CSR rows
        stream straight out of the arrays.
        """
        self._require(v)
        return self._store.out_items(v)

    def iter_in(self, v: VertexId) -> Iterator[tuple[VertexId, float]]:
        """Lazy ``(src, weight)`` over ``v``'s in-edges (no list built)."""
        self._require(v)
        return self._store.in_items(v)

    def iter_neighbors(self, v: VertexId) -> Iterator[VertexId]:
        """Lazy union of out- then unseen in-neighbors (stable order)."""
        self._require(v)
        seen = {}
        for dst, _ in self._store.out_items(v):
            if dst not in seen:
                seen[dst] = None
                yield dst
        for src, _ in self._store.in_items(v):
            if src not in seen:
                seen[src] = None
                yield src

    def out_edges(self, v: VertexId) -> list[Edge]:
        """This vertex's outgoing edges."""
        self._require(v)
        return [
            Edge(v, dst, w, label)
            for dst, w, label in self._store.out_items_labeled(v)
        ]

    def in_edges(self, v: VertexId) -> list[Edge]:
        """Incoming edges of ``v``."""
        self._require(v)
        return [
            Edge(src, v, w, label)
            for src, w, label in self._store.in_items_labeled(v)
        ]

    def out_degree(self, v: VertexId) -> int:
        """Number of outgoing edges of ``v``."""
        self._require(v)
        return self._store.out_degree(v)

    def in_degree(self, v: VertexId) -> int:
        """Number of incoming edges of ``v``."""
        self._require(v)
        return self._store.in_degree(v)

    def degree(self, v: VertexId) -> int:
        """Number of distinct neighbors of ``v`` (either direction)."""
        return len(self.neighbors(v))

    def edge_weight(self, src: VertexId, dst: VertexId) -> float:
        """Weight of edge ``src -> dst`` (GraphError if absent)."""
        if not self.has_edge(src, dst):
            raise GraphError(f"no edge {src}->{dst}")
        return self._store.arc_weight(src, dst)

    def edge_label(self, src: VertexId, dst: VertexId) -> str | None:
        """Label of edge ``src -> dst`` (GraphError if absent)."""
        if not self.has_edge(src, dst):
            raise GraphError(f"no edge {src}->{dst}")
        return self._store.arc_label(src, dst)

    def vertex_label(self, v: VertexId) -> str | None:
        """Label of vertex ``v`` (GraphError if absent)."""
        self._require(v)
        return self._store.vertex_label(v)

    def vertex_props(self, v: VertexId) -> dict[str, object]:
        """Property dict of vertex ``v`` (may be empty)."""
        self._require(v)
        return self._store.vertex_props(v)

    def vertices_with_label(self, label: str) -> list[VertexId]:
        """All vertices carrying ``label`` (linear scan; see storage.index)."""
        store = self._store
        return [v for v in store.vertices() if store.vertex_label(v) == label]

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def _blank(self, directed: bool) -> "Graph":
        """Empty graph on a fresh store of the same kind/configuration."""
        return Graph(directed=directed, store=self._store.fresh())

    def copy(self) -> "Graph":
        """Deep-enough copy: structure and labels; props shallow-copied."""
        store = self._store
        g = self._blank(self.directed)
        for v in store.vertices():
            g.add_vertex(v, store.vertex_label(v), **store.vertex_props(v))
        for src in store.vertices():
            for dst, w, label in store.out_items_labeled(src):
                if not self.directed and g.has_edge(src, dst):
                    continue
                g.add_edge(src, dst, w, label)
        return g

    def subgraph(self, vertices: Iterable[VertexId]) -> "Graph":
        """Induced subgraph over ``vertices`` (copies labels/props)."""
        keep = set(vertices)
        store = self._store
        g = self._blank(self.directed)
        for v in keep:
            self._require(v)
            g.add_vertex(v, store.vertex_label(v), **store.vertex_props(v))
        for src in keep:
            for dst, w, label in store.out_items_labeled(src):
                if dst in keep:
                    g.add_edge(src, dst, w, label)
        return g

    def reversed(self) -> "Graph":
        """Graph with every edge direction flipped."""
        store = self._store
        g = self._blank(self.directed)
        for v in store.vertices():
            g.add_vertex(v, store.vertex_label(v), **store.vertex_props(v))
        for src in store.vertices():
            for dst, w, label in store.out_items_labeled(src):
                g.add_edge(dst, src, w, label)
        return g

    def as_undirected(self) -> "Graph":
        """Undirected copy (weights of antiparallel pairs: last wins)."""
        store = self._store
        g = self._blank(False)
        for v in store.vertices():
            g.add_vertex(v, store.vertex_label(v), **store.vertex_props(v))
        for src in store.vertices():
            for dst, w, label in store.out_items_labeled(src):
                g.add_edge(src, dst, w, label)
        return g

    def with_store(self, store: str | GraphStore) -> "Graph":
        """Copy of this graph rebuilt on a different backing store."""
        g = Graph(directed=self.directed, store=store)
        src_store = self._store
        for v in src_store.vertices():
            g.add_vertex(
                v, src_store.vertex_label(v), **src_store.vertex_props(v)
            )
        for src in src_store.vertices():
            for dst, w, label in src_store.out_items_labeled(src):
                if not self.directed and g.has_edge(src, dst):
                    continue
                g.add_edge(src, dst, w, label)
        return g

    def __repr__(self) -> str:
        kind = "digraph" if self.directed else "graph"
        return f"<Graph {kind} |V|={self.num_vertices} |E|={self.num_edges}>"

    def _require(self, v: VertexId) -> None:
        if not self._store.has_vertex(v):
            raise GraphError(f"no vertex {v}")
