"""The fragment storage seam: pluggable backing stores for :class:`Graph`.

A :class:`GraphStore` owns the *flat* single-direction primitives —
vertex table, one adjacency entry per stored arc, weight/label columns —
while :class:`repro.graph.digraph.Graph` keeps every compound rule on
top of them (undirected double-writes, edge counting, incident-edge
cleanup on vertex removal, :class:`~repro.errors.GraphError` raising).
That split means both stores share one implementation of the tricky
semantics and can only diverge in layout, never in behavior.

Two stores ship:

* :class:`DictStore` — the original adjacency-dict layout, the default
  and the byte-exact oracle every other store is tested against;
* :class:`repro.graph.csr.CSRStore` — compact ``array``-backed CSR rows
  with a delta-aware overlay (see that module).

The contract every store must honor, because engine determinism depends
on it: iteration order is *dict-store order*. Vertices iterate in first-
insertion order with remove+re-add moving a vertex to the end; per-vertex
adjacency iterates in edge-insertion order where a reweight keeps the
edge's position and a delete+re-insert moves it to the end.
"""

from __future__ import annotations

from typing import Hashable, Iterator

VertexId = Hashable

__all__ = ["GraphStore", "DictStore", "STORES", "make_store"]


class GraphStore:
    """Abstract single-direction storage primitives behind ``Graph``.

    All edge methods deal in *stored arcs*: the facade calls them once
    per direction it wants stored (twice for undirected graphs). Vertex
    existence is guaranteed by the facade before any edge call.
    """

    #: registry key; also what ``Graph.store_kind`` reports.
    kind = "abstract"

    # -- vertices ------------------------------------------------------
    def add_vertex(self, v: VertexId, label: str | None) -> bool:
        """Create ``v`` if absent; return True when freshly created."""
        raise NotImplementedError

    def set_vertex_label(self, v: VertexId, label: str | None) -> None:
        raise NotImplementedError

    def vertex_label(self, v: VertexId) -> str | None:
        raise NotImplementedError

    def update_vertex_props(self, v: VertexId, props: dict) -> None:
        raise NotImplementedError

    def vertex_props(self, v: VertexId) -> dict:
        raise NotImplementedError

    def has_vertex(self, v: VertexId) -> bool:
        raise NotImplementedError

    def vertices(self) -> Iterator[VertexId]:
        raise NotImplementedError

    def num_vertices(self) -> int:
        raise NotImplementedError

    def drop_vertex(self, v: VertexId) -> None:
        """Forget ``v``'s bookkeeping (incident arcs already removed)."""
        raise NotImplementedError

    # -- arcs ----------------------------------------------------------
    def set_arc(self, src: VertexId, dst: VertexId, weight: float) -> bool:
        """Store arc ``src -> dst``; return True when it did not exist."""
        raise NotImplementedError

    def delete_arc(self, src: VertexId, dst: VertexId) -> None:
        """Remove an arc known to exist (facade checks first)."""
        raise NotImplementedError

    def has_arc(self, src: VertexId, dst: VertexId) -> bool:
        raise NotImplementedError

    def arc_weight(self, src: VertexId, dst: VertexId) -> float:
        raise NotImplementedError

    def set_arc_label(self, src: VertexId, dst: VertexId, label: str) -> None:
        raise NotImplementedError

    def arc_label(self, src: VertexId, dst: VertexId) -> str | None:
        raise NotImplementedError

    def out_items(self, v: VertexId) -> Iterator[tuple[VertexId, float]]:
        """Lazy ``(dst, weight)`` pairs in dict-store order."""
        raise NotImplementedError

    def in_items(self, v: VertexId) -> Iterator[tuple[VertexId, float]]:
        """Lazy ``(src, weight)`` pairs in dict-store order."""
        raise NotImplementedError

    def out_items_labeled(
        self, v: VertexId
    ) -> Iterator[tuple[VertexId, float, str | None]]:
        """``(dst, weight, label)`` triples (label of arc ``v -> dst``)."""
        raise NotImplementedError

    def in_items_labeled(
        self, v: VertexId
    ) -> Iterator[tuple[VertexId, float, str | None]]:
        """``(src, weight, label)`` triples (label of arc ``src -> v``)."""
        raise NotImplementedError

    def out_degree(self, v: VertexId) -> int:
        raise NotImplementedError

    def in_degree(self, v: VertexId) -> int:
        raise NotImplementedError

    # -- maintenance ---------------------------------------------------
    def fresh(self) -> "GraphStore":
        """Empty store of the same kind and configuration."""
        raise NotImplementedError

    def compact(self) -> bool:
        """Fold any overlay back into the base layout; True if it ran."""
        return False


class DictStore(GraphStore):
    """Adjacency-dict layout: the original ``Graph`` internals, verbatim.

    ``_out``/``_in`` are dict-of-dicts ``vid -> {vid -> weight}``; labels
    and props ride in side dicts. This is the oracle layout — its
    iteration order *defines* the ordering contract above.
    """

    kind = "dict"

    def __init__(self) -> None:
        self._out: dict[VertexId, dict[VertexId, float]] = {}
        self._in: dict[VertexId, dict[VertexId, float]] = {}
        self._vlabel: dict[VertexId, str | None] = {}
        self._vprops: dict[VertexId, dict[str, object]] = {}
        self._elabel: dict[tuple[VertexId, VertexId], str] = {}

    # -- vertices ------------------------------------------------------
    def add_vertex(self, v: VertexId, label: str | None) -> bool:
        if v in self._out:
            return False
        self._out[v] = {}
        self._in[v] = {}
        self._vlabel[v] = label
        return True

    def set_vertex_label(self, v: VertexId, label: str | None) -> None:
        self._vlabel[v] = label

    def vertex_label(self, v: VertexId) -> str | None:
        return self._vlabel[v]

    def update_vertex_props(self, v: VertexId, props: dict) -> None:
        self._vprops.setdefault(v, {}).update(props)

    def vertex_props(self, v: VertexId) -> dict:
        return self._vprops.get(v, {})

    def has_vertex(self, v: VertexId) -> bool:
        return v in self._out

    def vertices(self) -> Iterator[VertexId]:
        return iter(self._out)

    def num_vertices(self) -> int:
        return len(self._out)

    def drop_vertex(self, v: VertexId) -> None:
        del self._out[v]
        del self._in[v]
        del self._vlabel[v]
        self._vprops.pop(v, None)

    # -- arcs ----------------------------------------------------------
    def set_arc(self, src: VertexId, dst: VertexId, weight: float) -> bool:
        row = self._out[src]
        fresh = dst not in row
        row[dst] = weight
        self._in[dst][src] = weight
        return fresh

    def delete_arc(self, src: VertexId, dst: VertexId) -> None:
        del self._out[src][dst]
        del self._in[dst][src]
        self._elabel.pop((src, dst), None)

    def has_arc(self, src: VertexId, dst: VertexId) -> bool:
        row = self._out.get(src)
        return row is not None and dst in row

    def arc_weight(self, src: VertexId, dst: VertexId) -> float:
        return self._out[src][dst]

    def set_arc_label(self, src: VertexId, dst: VertexId, label: str) -> None:
        self._elabel[(src, dst)] = label

    def arc_label(self, src: VertexId, dst: VertexId) -> str | None:
        return self._elabel.get((src, dst))

    def out_items(self, v: VertexId) -> Iterator[tuple[VertexId, float]]:
        return iter(self._out[v].items())

    def in_items(self, v: VertexId) -> Iterator[tuple[VertexId, float]]:
        return iter(self._in[v].items())

    def out_items_labeled(self, v: VertexId):
        elabel = self._elabel
        for dst, w in self._out[v].items():
            yield dst, w, elabel.get((v, dst))

    def in_items_labeled(self, v: VertexId):
        elabel = self._elabel
        for src, w in self._in[v].items():
            yield src, w, elabel.get((src, v))

    def out_degree(self, v: VertexId) -> int:
        return len(self._out[v])

    def in_degree(self, v: VertexId) -> int:
        return len(self._in[v])

    def fresh(self) -> "DictStore":
        return DictStore()


def _make_dict() -> GraphStore:
    return DictStore()


def _make_csr() -> GraphStore:
    from repro.graph.csr import CSRStore

    return CSRStore()


#: name -> zero-arg factory; ``Graph(store=...)`` and the CLI consult this.
STORES = {
    "dict": _make_dict,
    "csr": _make_csr,
}


def make_store(spec: "str | GraphStore | None") -> GraphStore:
    """Resolve a store spec: name, ready instance, or None (default)."""
    if spec is None:
        return DictStore()
    if isinstance(spec, GraphStore):
        return spec
    try:
        factory = STORES[spec]
    except KeyError:
        known = ", ".join(sorted(STORES))
        raise ValueError(
            f"unknown graph store {spec!r} (known: {known})"
        ) from None
    return factory()
