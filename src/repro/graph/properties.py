"""Vertex-indexed property maps.

Algorithm outputs (distances, component ids, match sets) are represented
as :class:`PropertyMap` — a thin dict wrapper with a default value, a name
and merge helpers used by Assemble when combining partial answers.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterator, Mapping

VertexId = Hashable


class PropertyMap:
    """A named vertex -> value map with a default for absent vertices."""

    def __init__(
        self,
        name: str,
        default: object = None,
        data: Mapping[VertexId, object] | None = None,
    ) -> None:
        self.name = name
        self.default = default
        self._data: dict[VertexId, object] = dict(data or {})

    def __getitem__(self, v: VertexId) -> object:
        return self._data.get(v, self.default)

    def __setitem__(self, v: VertexId, value: object) -> None:
        self._data[v] = value

    def __contains__(self, v: VertexId) -> bool:
        return v in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[VertexId]:
        return iter(self._data)

    def get(self, v: VertexId, default: object = None) -> object:
        """Value for ``v`` (or ``default``)."""
        return self._data.get(v, default)

    def items(self) -> Iterator[tuple[VertexId, object]]:
        """Iterate stored ``(vertex, value)`` pairs."""
        return iter(self._data.items())

    def as_dict(self) -> dict[VertexId, object]:
        """Copy of the stored mapping as a plain dict."""
        return dict(self._data)

    def merge(
        self,
        other: "PropertyMap",
        resolve: Callable[[object, object], object] | None = None,
    ) -> "PropertyMap":
        """Union with ``other``; conflicts resolved by ``resolve`` (default:
        other wins), returning a new map."""
        out = PropertyMap(self.name, self.default, self._data)
        for v, value in other.items():
            if v in out._data and resolve is not None:
                out._data[v] = resolve(out._data[v], value)
            else:
                out._data[v] = value
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PropertyMap):
            return NotImplemented
        return self._data == other._data and self.default == other.default

    def __repr__(self) -> str:
        return f"<PropertyMap {self.name!r} n={len(self._data)}>"
