"""Compact CSR fragment storage with a delta-aware overlay.

Layout
------
Vertices get dense integer *slots*. The base graph is a classic CSR per
direction — ``indptr``/``adjacency`` slot arrays plus columnar weight and
interned-label columns, all :mod:`array` typecode ``'q'``/``'d'`` (no
numpy) — frozen at the last compaction. Mutations land in a side log
keyed by vertex id:

* ``_add_*``   — fresh arcs appended after the base row (dict order);
* ``_del_*``   — masks over base arcs (each mask hits exactly one base
  entry, so degrees stay O(1));
* reweights of base arcs write the weight column *in place*, which keeps
  the arc's position exactly like the dict store does;
* ``_lab_over`` — authoritative current label for any overlay-touched
  arc (``None`` means "no label now", shadowing a stale base column).

The overlay speaks the same vocabulary as ``GraphDelta`` routing and
``apply_fragment_effects`` (all of which arrive through the unchanged
``Graph`` facade), so process-backend effect shipping works verbatim.

Ordering contract (what makes CSR byte-identical to the dict oracle):
iterate the base row skipping masks, then the appended adds; a reweight
keeps base position; a delete + re-insert leaves the base entry masked
and re-appends, i.e. the arc moves to the end — precisely dict-store
semantics. Removed-then-re-added vertices get a *new* slot past the base
range, so their dead base rows are unreachable and masked references to
their old slot still resolve to the right vertex id via ``_ids``.

Compaction folds the overlay back into fresh CSR arrays once the side
log exceeds a threshold (``max(1024, stored_arcs // 2)`` by default, or
the explicit ``compact_threshold``). It preserves logical iteration
order exactly, squeezes dead slots, and is therefore semantically
invisible — ``compactions`` counts runs so tests and E15 can assert it
actually happened.

Pickling narrows slot arrays to the smallest integer typecode that fits
and omits all-default label columns and the rebuildable slot index,
which is what makes CSR fragments strictly cheaper on the wire than the
dict store for the process backend.
"""

from __future__ import annotations

from array import array
from typing import Hashable, Iterator

from repro.graph.store import GraphStore

VertexId = Hashable

__all__ = ["CSRStore"]

_EMPTY: frozenset = frozenset()
_MISS = object()

#: narrowest unsigned array typecodes, widest-last (pickle shrinking).
_NARROW = ("B", "H", "I", "q")


def _narrowed(values: array) -> tuple[str, bytes]:
    """Re-encode a ``'q'`` array in the smallest typecode that fits."""
    top = max(values) if len(values) else 0
    for code in _NARROW:
        limit = 2 ** (8 * array(code).itemsize - (1 if code == "q" else 0))
        if top < limit:
            return code, array(code, values).tobytes()
    raise AssertionError("unreachable")  # pragma: no cover


def _widened(code: str, raw: bytes) -> array:
    """Inverse of :func:`_narrowed`: back to the working ``'q'`` layout."""
    packed = array(code)
    packed.frombytes(raw)
    return packed if code == "q" else array("q", packed)


class CSRStore(GraphStore):
    """Base CSR per direction + vid-keyed overlay; see module docstring."""

    kind = "csr"

    def __init__(self, compact_threshold: int | None = None) -> None:
        #: explicit side-log size that forces compaction (None = adaptive).
        self.compact_threshold = compact_threshold
        #: number of compactions performed over this store's lifetime.
        self.compactions = 0
        # vertex table -------------------------------------------------
        self._index: dict[VertexId, int] = {}  # vid -> slot, dict order
        self._ids: list[VertexId] = []  # slot -> vid (append-only)
        self._vlab = array("q")  # slot -> interned label id
        self._lut: list[str | None] = [None]  # label id -> label
        self._lut_ids: dict[str | None, int] = {None: 0}
        self._vprops: dict[VertexId, dict[str, object]] = {}
        # base CSR (covers slots < len(indptr) - 1) ---------------------
        self._out_indptr = array("q", [0])
        self._out_adj = array("q")
        self._out_w = array("d")
        self._out_lab = array("q")
        self._in_indptr = array("q", [0])
        self._in_adj = array("q")
        self._in_w = array("d")
        self._in_lab = array("q")
        # overlay ------------------------------------------------------
        self._add_out: dict[VertexId, dict[VertexId, float]] = {}
        self._del_out: dict[VertexId, set[VertexId]] = {}
        self._add_in: dict[VertexId, dict[VertexId, float]] = {}
        self._del_in: dict[VertexId, set[VertexId]] = {}
        self._lab_over: dict[tuple[VertexId, VertexId], str | None] = {}
        self._ov_ops = 0

    # ------------------------------------------------------------------
    # Vertices
    # ------------------------------------------------------------------
    def add_vertex(self, v: VertexId, label: str | None) -> bool:
        if v in self._index:
            return False
        self._index[v] = len(self._ids)
        self._ids.append(v)
        self._vlab.append(self._lab_id(label))
        return True

    def set_vertex_label(self, v: VertexId, label: str | None) -> None:
        self._vlab[self._index[v]] = self._lab_id(label)

    def vertex_label(self, v: VertexId) -> str | None:
        return self._lut[self._vlab[self._index[v]]]

    def update_vertex_props(self, v: VertexId, props: dict) -> None:
        self._vprops.setdefault(v, {}).update(props)

    def vertex_props(self, v: VertexId) -> dict:
        return self._vprops.get(v, {})

    def has_vertex(self, v: VertexId) -> bool:
        return v in self._index

    def vertices(self) -> Iterator[VertexId]:
        return iter(self._index)

    def num_vertices(self) -> int:
        return len(self._index)

    def drop_vertex(self, v: VertexId) -> None:
        # Incident arcs are already gone (the facade removes them first);
        # the slot goes dead until compaction squeezes it. Masks held by
        # *other* vertices over arcs into v must survive: they still
        # shadow live base entries.
        del self._index[v]
        self._vprops.pop(v, None)
        self._add_out.pop(v, None)
        self._del_out.pop(v, None)
        self._add_in.pop(v, None)
        self._del_in.pop(v, None)

    # ------------------------------------------------------------------
    # Arcs
    # ------------------------------------------------------------------
    def set_arc(self, src: VertexId, dst: VertexId, weight: float) -> bool:
        adds = self._add_out.get(src)
        if adds is not None and dst in adds:
            adds[dst] = weight  # reweight keeps overlay position
            self._add_in[dst][src] = weight
            return False
        if dst in self._del_out.get(src, _EMPTY):
            # the base arc stays masked; a re-insert appends at the end,
            # exactly where the dict store would put it
            self._append_arc(src, dst, weight)
            return True
        i = self._base_find(src, dst, out=True)
        if i is not None:
            # in-place reweight: position preserved, no side-log growth
            self._out_w[i] = weight
            self._in_w[self._base_find(dst, src, out=False)] = weight
            return False
        self._append_arc(src, dst, weight)
        return True

    def delete_arc(self, src: VertexId, dst: VertexId) -> None:
        adds = self._add_out.get(src)
        if adds is not None and dst in adds:
            del adds[dst]
            del self._add_in[dst][src]
        else:
            self._del_out.setdefault(src, set()).add(dst)
            self._del_in.setdefault(dst, set()).add(src)
        # authoritative "no label": shadows any stale base label column
        # entry if the arc is ever re-inserted
        self._lab_over[(src, dst)] = None
        self._ov_ops += 1
        self._maybe_compact()

    def has_arc(self, src: VertexId, dst: VertexId) -> bool:
        adds = self._add_out.get(src)
        if adds is not None and dst in adds:
            return True
        if dst in self._del_out.get(src, _EMPTY):
            return False
        return self._base_find(src, dst, out=True) is not None

    def arc_weight(self, src: VertexId, dst: VertexId) -> float:
        adds = self._add_out.get(src)
        if adds is not None and dst in adds:
            return adds[dst]
        return self._out_w[self._base_find(src, dst, out=True)]

    def set_arc_label(self, src: VertexId, dst: VertexId, label: str) -> None:
        self._lab_over[(src, dst)] = label

    def arc_label(self, src: VertexId, dst: VertexId) -> str | None:
        label = self._lab_over.get((src, dst), _MISS)
        if label is not _MISS:
            return label
        i = self._base_find(src, dst, out=True)
        return None if i is None else self._lut[self._out_lab[i]]

    # ------------------------------------------------------------------
    # Iteration (the engine's hot paths)
    # ------------------------------------------------------------------
    def out_items(self, v: VertexId):
        lo, hi = self._base_range(self._out_indptr, self._index[v])
        if lo != hi:
            ids = self._ids
            dels = self._del_out.get(v, _EMPTY)
            row = memoryview(self._out_adj)[lo:hi]
            wts = memoryview(self._out_w)[lo:hi]
            for k, slot in enumerate(row):
                dst = ids[slot]
                if dst not in dels:
                    yield dst, wts[k]
        adds = self._add_out.get(v)
        if adds:
            yield from adds.items()

    def in_items(self, v: VertexId):
        lo, hi = self._base_range(self._in_indptr, self._index[v])
        if lo != hi:
            ids = self._ids
            dels = self._del_in.get(v, _EMPTY)
            row = memoryview(self._in_adj)[lo:hi]
            wts = memoryview(self._in_w)[lo:hi]
            for k, slot in enumerate(row):
                src = ids[slot]
                if src not in dels:
                    yield src, wts[k]
        adds = self._add_in.get(v)
        if adds:
            yield from adds.items()

    def out_items_labeled(self, v: VertexId):
        lo, hi = self._base_range(self._out_indptr, self._index[v])
        over = self._lab_over
        if lo != hi:
            ids, lut = self._ids, self._lut
            dels = self._del_out.get(v, _EMPTY)
            for i in range(lo, hi):
                dst = ids[self._out_adj[i]]
                if dst in dels:
                    continue
                label = over.get((v, dst), _MISS)
                if label is _MISS:
                    label = lut[self._out_lab[i]]
                yield dst, self._out_w[i], label
        adds = self._add_out.get(v)
        if adds:
            for dst, w in adds.items():
                yield dst, w, over.get((v, dst))

    def in_items_labeled(self, v: VertexId):
        lo, hi = self._base_range(self._in_indptr, self._index[v])
        over = self._lab_over
        if lo != hi:
            ids, lut = self._ids, self._lut
            dels = self._del_in.get(v, _EMPTY)
            for i in range(lo, hi):
                src = ids[self._in_adj[i]]
                if src in dels:
                    continue
                label = over.get((src, v), _MISS)
                if label is _MISS:
                    label = lut[self._in_lab[i]]
                yield src, self._in_w[i], label
        adds = self._add_in.get(v)
        if adds:
            for src, w in adds.items():
                yield src, w, over.get((src, v))

    def out_degree(self, v: VertexId) -> int:
        lo, hi = self._base_range(self._out_indptr, self._index[v])
        return (
            hi - lo
            - len(self._del_out.get(v, _EMPTY))
            + len(self._add_out.get(v, _EMPTY))
        )

    def in_degree(self, v: VertexId) -> int:
        lo, hi = self._base_range(self._in_indptr, self._index[v])
        return (
            hi - lo
            - len(self._del_in.get(v, _EMPTY))
            + len(self._add_in.get(v, _EMPTY))
        )

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    @property
    def overlay_ops(self) -> int:
        """Arc inserts/deletes sitting in the side log since compaction."""
        return self._ov_ops

    def dirty(self) -> bool:
        """Whether any overlay state or dead slot is pending compaction."""
        return bool(
            self._add_out
            or self._del_out
            or self._lab_over
            or len(self._ids) != len(self._index)
        )

    def compact(self) -> bool:
        """Fold the overlay into fresh base arrays (order-preserving)."""
        if not self.dirty():
            return False
        order = list(self._index)
        new_index = {v: i for i, v in enumerate(order)}
        out = self._build_base(order, new_index, out=True)
        inc = self._build_base(order, new_index, out=False)
        self._ids = order
        self._vlab = array("q", (self._vlab[s] for s in
                                 (self._index[v] for v in order)))
        self._index = new_index
        (self._out_indptr, self._out_adj, self._out_w, self._out_lab) = out
        (self._in_indptr, self._in_adj, self._in_w, self._in_lab) = inc
        self._add_out = {}
        self._del_out = {}
        self._add_in = {}
        self._del_in = {}
        self._lab_over = {}
        self._ov_ops = 0
        self.compactions += 1
        return True

    def _build_base(self, order, new_index, *, out):
        items = self.out_items_labeled if out else self.in_items_labeled
        indptr = array("q", [0])
        adj = array("q")
        wts = array("d")
        lab = array("q")
        for v in order:
            for other, w, label in items(v):
                adj.append(new_index[other])
                wts.append(w)
                lab.append(self._lab_id(label))
            indptr.append(len(adj))
        return indptr, adj, wts, lab

    def _maybe_compact(self) -> None:
        threshold = self.compact_threshold
        if threshold is None:
            threshold = max(1024, (len(self._out_adj) + len(self._in_adj)) // 2)
        if self._ov_ops >= threshold:
            self.compact()

    def fresh(self) -> "CSRStore":
        return CSRStore(compact_threshold=self.compact_threshold)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _lab_id(self, label: str | None) -> int:
        lid = self._lut_ids.get(label)
        if lid is None:
            lid = len(self._lut)
            self._lut_ids[label] = lid
            self._lut.append(label)
        return lid

    @staticmethod
    def _base_range(indptr: array, slot: int) -> tuple[int, int]:
        if slot >= len(indptr) - 1:
            return 0, 0  # slot assigned after the last compaction
        return indptr[slot], indptr[slot + 1]

    def _base_find(self, src: VertexId, dst: VertexId, *, out: bool):
        """Index of arc ``src -> dst`` in the base arrays, or None.

        Scans by *current* slot, which is complete for live base arcs: a
        vertex re-added since compaction has a fresh slot past the base
        range, and every base arc touching its old slot is masked.
        """
        dslot = self._index.get(dst)
        if dslot is None:
            return None
        indptr = self._out_indptr if out else self._in_indptr
        adj = self._out_adj if out else self._in_adj
        lo, hi = self._base_range(indptr, self._index[src])
        if lo == hi or dslot >= len(indptr) - 1:
            return None
        for i in range(lo, hi):
            if adj[i] == dslot:
                return i
        return None

    def _append_arc(self, src: VertexId, dst: VertexId, weight: float) -> None:
        self._add_out.setdefault(src, {})[dst] = weight
        self._add_in.setdefault(dst, {})[src] = weight
        self._ov_ops += 1
        self._maybe_compact()

    # ------------------------------------------------------------------
    # Pickling: narrow slot arrays, drop rebuildables
    # ------------------------------------------------------------------
    def __getstate__(self):
        state = dict(self.__dict__)
        for name in ("_out_indptr", "_out_adj", "_out_lab",
                     "_in_indptr", "_in_adj", "_in_lab", "_vlab"):
            col = state[name]
            if name.endswith("lab") and not any(col):
                state[name] = len(col)  # all-default column: ship length
            else:
                state[name] = _narrowed(col)
        if self._ids == list(self._index):
            state["_index"] = None  # aligned: rebuild from _ids
        return state

    def __setstate__(self, state):
        for name in ("_out_indptr", "_out_adj", "_out_lab",
                     "_in_indptr", "_in_adj", "_in_lab", "_vlab"):
            packed = state[name]
            if isinstance(packed, int):
                state[name] = array("q", bytes(8 * packed))
            else:
                state[name] = _widened(*packed)
        if state["_index"] is None:
            state["_index"] = {v: i for i, v in enumerate(state["_ids"])}
        self.__dict__.update(state)
