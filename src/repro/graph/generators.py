"""Synthetic graph generators standing in for the paper's datasets.

The demo's experiments run on the US road network (graph traversal),
LiveJournal (partition-strategy comparison) and Weibo (GPAR marketing).
None of those can be bundled here, so each generator is parameterized to
reproduce the *structural property the experiment depends on*:

* :func:`road_network` — planar-ish grid with diagonals and weighted
  edges: **huge diameter, degree <= 8**. Diameter is what makes
  vertex-centric SSSP take thousands of supersteps (Table 1).
* :func:`power_law` — preferential attachment: **low diameter, heavy
  tail**. Degree skew is what separates METIS-style from streaming
  partitions via cross-edge counts (Section 3).
* :func:`labeled_social` — follow/recommend/rate edges with person and
  product labels, for Sim/SubIso/Keyword/GPAR workloads (Fig. 4).
* :func:`bipartite_ratings` — user-item ratings for CF.

All generators are deterministic given a seed.
"""

from __future__ import annotations

from repro.graph.digraph import Graph
from repro.utils.rng import make_rng


def path_graph(n: int, directed: bool = True) -> Graph:
    """0 -> 1 -> ... -> n-1."""
    g = Graph(directed=directed)
    g.add_vertex(0)
    for v in range(1, n):
        g.add_edge(v - 1, v)
    return g


def cycle_graph(n: int, directed: bool = True) -> Graph:
    """Directed cycle 0 -> 1 -> ... -> n-1 -> 0."""
    g = path_graph(n, directed)
    if n > 1:
        g.add_edge(n - 1, 0)
    return g


def star_graph(n: int, directed: bool = True) -> Graph:
    """Hub 0 pointing at spokes 1..n-1."""
    g = Graph(directed=directed)
    g.add_vertex(0)
    for v in range(1, n):
        g.add_edge(0, v)
    return g


def complete_graph(n: int, directed: bool = True) -> Graph:
    """Complete graph on ``n`` vertices."""
    g = Graph(directed=directed)
    for v in range(n):
        g.add_vertex(v)
    for u in range(n):
        for v in range(n):
            if u != v and (directed or u < v):
                g.add_edge(u, v)
    return g


def binary_tree(depth: int, directed: bool = True) -> Graph:
    """Complete binary tree of the given depth, edges parent -> child."""
    g = Graph(directed=directed)
    g.add_vertex(0)
    last = 2 ** (depth + 1) - 2
    for v in range(1, last + 1):
        g.add_edge((v - 1) // 2, v)
    return g


def erdos_renyi(
    n: int, p: float, seed: int | None = 0, directed: bool = True
) -> Graph:
    """G(n, p) random graph."""
    rng = make_rng(seed, "erdos_renyi", n)
    g = Graph(directed=directed)
    for v in range(n):
        g.add_vertex(v)
    for u in range(n):
        start = 0 if directed else u + 1
        for v in range(start, n):
            if u != v and rng.random() < p:
                g.add_edge(u, v)
    return g


def random_weighted_digraph(
    n: int,
    m: int,
    seed: int | None = 0,
    max_weight: float = 10.0,
    store: str | None = None,
) -> Graph:
    """n vertices, ~m distinct weighted arcs, uniformly random endpoints."""
    rng = make_rng(seed, "random_weighted", n, m)
    g = Graph(directed=True, store=store)
    for v in range(n):
        g.add_vertex(v)
    added = 0
    attempts = 0
    while added < m and attempts < 20 * m:
        attempts += 1
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v or g.has_edge(u, v):
            continue
        g.add_edge(u, v, 1.0 + rng.random() * (max_weight - 1.0))
        added += 1
    return g


def road_network(
    rows: int,
    cols: int,
    seed: int | None = 0,
    diagonal_prob: float = 0.15,
    removal_prob: float = 0.05,
    store: str | None = None,
) -> Graph:
    """A US-road-network stand-in: grid with sparse diagonals and holes.

    Every edge is added in both directions with a weight drawn from
    [1, 10] (road length). The resulting graph has diameter
    Θ(rows + cols) and max degree 8 — the structural profile of real
    road networks that drives Table 1's vertex-centric blow-up.
    """
    rng = make_rng(seed, "road", rows, cols)
    g = Graph(directed=True, store=store)

    def vid(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            g.add_vertex(vid(r, c))
    for r in range(rows):
        for c in range(cols):
            here = vid(r, c)
            if c + 1 < cols and rng.random() > removal_prob:
                w = 1.0 + rng.random() * 9.0
                g.add_edge(here, vid(r, c + 1), w)
                g.add_edge(vid(r, c + 1), here, w)
            if r + 1 < rows and rng.random() > removal_prob:
                w = 1.0 + rng.random() * 9.0
                g.add_edge(here, vid(r + 1, c), w)
                g.add_edge(vid(r + 1, c), here, w)
            if (
                r + 1 < rows
                and c + 1 < cols
                and rng.random() < diagonal_prob
            ):
                w = 1.5 + rng.random() * 12.0
                g.add_edge(here, vid(r + 1, c + 1), w)
                g.add_edge(vid(r + 1, c + 1), here, w)
    return g


def power_law(
    n: int,
    m_per_node: int = 4,
    seed: int | None = 0,
    directed: bool = True,
    store: str | None = None,
) -> Graph:
    """Barabási–Albert preferential attachment (LiveJournal stand-in).

    Each arriving vertex attaches to ``m_per_node`` existing vertices
    chosen proportionally to degree (repeated-endpoint trick), giving the
    heavy-tailed degree distribution and low diameter of social graphs.
    Edges go both ways so traversal queries reach the whole graph.
    """
    if n <= m_per_node:
        raise ValueError("n must exceed m_per_node")
    rng = make_rng(seed, "power_law", n, m_per_node)
    g = Graph(directed=directed, store=store)
    targets = list(range(m_per_node))
    repeated: list[int] = []
    for v in range(m_per_node):
        g.add_vertex(v)
    for v in range(m_per_node, n):
        for t in set(targets):
            w = 1.0 + rng.random() * 4.0
            g.add_edge(v, t, w)
            if directed:
                g.add_edge(t, v, w)
            repeated.append(t)
            repeated.append(v)
        targets = [rng.choice(repeated) for _ in range(m_per_node)]
    return g


_FIRST_NAMES = (
    "ann bob cai dana eli fei gus hana ivan juno kara liam mona nick "
    "omar pia quin rosa sam tess ugo vera wade xiu yara zane"
).split()

_PRODUCTS = ("phone", "laptop", "camera", "tablet", "watch", "console")


def labeled_social(
    n_people: int,
    n_products: int = 6,
    seed: int | None = 0,
    follow_per_person: int = 6,
    interaction_prob: float = 0.35,
    store: str | None = None,
) -> Graph:
    """A Weibo-style labeled social graph for Sim/SubIso/Keyword/GPAR.

    Vertices: ``person`` (props: name) and ``product`` (props: name).
    Edges: ``follow`` (person -> person, preferential), ``recommend`` and
    ``rate_bad`` and ``buy`` (person -> product). The follow structure is
    preferential so influencer patterns (Fig. 4's GPAR) have matches.
    """
    rng = make_rng(seed, "social", n_people, n_products)
    g = Graph(directed=True, store=store)
    n_products = min(n_products, len(_PRODUCTS))
    products = []
    for i in range(n_products):
        pid = n_people + i
        g.add_vertex(pid, label="product", name=_PRODUCTS[i])
        products.append(pid)
    for v in range(n_people):
        g.add_vertex(
            v,
            label="person",
            name=f"{_FIRST_NAMES[v % len(_FIRST_NAMES)]}{v}",
        )
    # Preferential follow edges.
    popularity = [1] * n_people
    for v in range(n_people):
        k = min(follow_per_person, n_people - 1)
        total = sum(popularity)
        for _ in range(k):
            pick = rng.randrange(total)
            acc = 0
            target = 0
            for u, pop in enumerate(popularity):
                acc += pop
                if pick < acc:
                    target = u
                    break
            if target != v and not g.has_edge(v, target):
                g.add_edge(v, target, label="follow")
                popularity[target] += 2
    # Product interactions.
    for v in range(n_people):
        if rng.random() >= interaction_prob:
            continue
        product = rng.choice(products)
        roll = rng.random()
        if roll < 0.55:
            g.add_edge(v, product, label="recommend")
        elif roll < 0.75:
            g.add_edge(v, product, label="buy")
        else:
            g.add_edge(v, product, label="rate_bad")
    return g


def community_graph(
    n: int,
    num_communities: int = 20,
    intra_degree: int = 8,
    inter_degree: int = 1,
    seed: int | None = 0,
    store: str | None = None,
) -> Graph:
    """Community-structured social graph (the LiveJournal stand-in).

    LiveJournal-class social networks combine a heavy-tailed degree
    distribution with strong *community structure* — most edges stay
    inside dense clusters. That locality is what separates METIS-class
    partitioners from hash partitioning in the Section-3 experiment, and
    plain preferential attachment does not have it. This generator plants
    ``num_communities`` equal communities; each vertex draws
    ``intra_degree`` preferential edges inside its community and
    ``inter_degree`` uniform edges outside. Edges go both ways so
    traversal reaches the whole graph.
    """
    rng = make_rng(seed, "community", n, num_communities)
    g = Graph(directed=True, store=store)
    size = -(-n // num_communities)
    for v in range(n):
        g.add_vertex(v)

    def community_of(v: int) -> int:
        return v // size

    # Preferential attachment within each community.
    popularity = [1] * n
    for v in range(n):
        c = community_of(v)
        lo, hi = c * size, min((c + 1) * size, n)
        members = range(lo, hi)
        total = sum(popularity[u] for u in members)
        for _ in range(min(intra_degree, hi - lo - 1)):
            pick = rng.randrange(total)
            acc = 0
            target = lo
            for u in members:
                acc += popularity[u]
                if pick < acc:
                    target = u
                    break
            if target != v and not g.has_edge(v, target):
                w = 1.0 + rng.random() * 4.0
                g.add_edge(v, target, w)
                g.add_edge(target, v, w)
                popularity[target] += 1
                total += 1
        for _ in range(inter_degree):
            target = rng.randrange(n)
            if community_of(target) != c and not g.has_edge(v, target):
                w = 1.0 + rng.random() * 4.0
                g.add_edge(v, target, w)
                g.add_edge(target, v, w)
    return g


def labeled_random(
    n: int,
    num_labels: int = 20,
    edges_per_vertex: int = 4,
    seed: int | None = 0,
) -> Graph:
    """Random digraph with many vertex labels (index-selectivity tests).

    Labels are ``L0..L{k-1}``, assigned uniformly; when a pattern touches
    only a couple of labels, a label index can skip the bulk of the
    graph — the workload for the graph-level-optimization ablation (E8).
    """
    rng = make_rng(seed, "labeled_random", n, num_labels)
    g = Graph(directed=True)
    for v in range(n):
        g.add_vertex(v, label=f"L{rng.randrange(num_labels)}")
    for v in range(n):
        for _ in range(edges_per_vertex):
            u = rng.randrange(n)
            if u != v:
                g.add_edge(v, u)
    return g


def bipartite_ratings(
    n_users: int,
    n_items: int,
    ratings_per_user: int = 10,
    seed: int | None = 0,
    max_rating: float = 5.0,
) -> Graph:
    """User-item rating bipartite graph for collaborative filtering.

    Users are ``0..n_users-1`` (label ``user``); items are
    ``n_users..n_users+n_items-1`` (label ``item``). Edge weight is the
    rating, generated from latent user/item factors plus noise so that a
    matrix-factorization CF model can actually fit it.
    """
    rng = make_rng(seed, "ratings", n_users, n_items)
    g = Graph(directed=True)
    rank = 3
    user_factors = [
        [rng.gauss(0, 1) for _ in range(rank)] for _ in range(n_users)
    ]
    item_factors = [
        [rng.gauss(0, 1) for _ in range(rank)] for _ in range(n_items)
    ]
    for u in range(n_users):
        g.add_vertex(u, label="user")
    for i in range(n_items):
        g.add_vertex(n_users + i, label="item")
    mid = max_rating / 2.0
    for u in range(n_users):
        items = rng.sample(range(n_items), min(ratings_per_user, n_items))
        for i in items:
            dot = sum(a * b for a, b in zip(user_factors[u], item_factors[i]))
            rating = mid + dot + rng.gauss(0, 0.3)
            rating = max(0.5, min(max_rating, rating))
            g.add_edge(u, n_users + i, weight=round(rating * 2) / 2, label="rate")
    return g


def graph_from_spec(spec: str, store: str | None = None) -> Graph:
    """Build a generator graph from a compact ``kind:params`` spec.

    The shared vocabulary of the CLI and workload traces:
    ``road:RxC`` (road network grid), ``power:N`` (power law),
    ``social:N`` (labeled social graph). ``store`` selects the backing
    storage ("dict"/"csr"); fragments built from the graph inherit it.
    """
    from repro.errors import GrapeError

    kind, _, arg = spec.partition(":")
    if kind == "road":
        rows, _, cols = arg.partition("x")
        return road_network(int(rows), int(cols or rows), store=store)
    if kind == "power":
        return power_law(int(arg or 1000), store=store)
    if kind == "social":
        return labeled_social(int(arg or 500), store=store)
    raise GrapeError(
        f"unknown graph spec {spec!r}; use road:RxC, power:N or social:N"
    )
