"""Structural graph metrics used by experiments and the load balancer."""

from __future__ import annotations

from collections import Counter, deque
from typing import Hashable, Mapping

from repro.graph.digraph import Graph

VertexId = Hashable


def degree_histogram(graph: Graph) -> dict[int, int]:
    """Out-degree -> count of vertices with that out-degree."""
    return dict(Counter(graph.out_degree(v) for v in graph.vertices()))


def average_degree(graph: Graph) -> float:
    """Mean out-degree (|E| / |V|)."""
    if graph.num_vertices == 0:
        return 0.0
    return graph.num_edges / graph.num_vertices


def max_degree(graph: Graph) -> int:
    """Largest out-degree in the graph."""
    return max((graph.out_degree(v) for v in graph.vertices()), default=0)


def bfs_layers(graph: Graph, source: VertexId) -> dict[VertexId, int]:
    """Hop distance from ``source`` along out-edges."""
    dist = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.out_neighbors(v):
            if u not in dist:
                dist[u] = dist[v] + 1
                queue.append(u)
    return dist


def eccentricity(graph: Graph, source: VertexId) -> int:
    """Max hop distance reachable from ``source`` (its BFS depth)."""
    layers = bfs_layers(graph, source)
    return max(layers.values(), default=0)


def estimate_diameter(graph: Graph, probes: int = 4) -> int:
    """Double-sweep lower bound on the diameter.

    Runs a BFS from an arbitrary vertex, then from the farthest vertex
    found, repeating ``probes`` times; returns the largest depth seen.
    Exact diameters are overkill for the experiments — what matters is
    road-network diameters being orders of magnitude above social ones.
    """
    vertices = list(graph.vertices())
    if not vertices:
        return 0
    best = 0
    start = vertices[0]
    for _ in range(probes):
        layers = bfs_layers(graph, start)
        if not layers:
            break
        far, depth = max(layers.items(), key=lambda kv: kv[1])
        best = max(best, depth)
        if far == start:
            break
        start = far
    return best


def edge_cut(graph: Graph, assignment: Mapping[VertexId, int]) -> int:
    """Edges crossing fragments under a vertex assignment."""
    return sum(
        1
        for e in graph.edges()
        if assignment[e.src] != assignment[e.dst]
    )


def partition_balance(
    graph: Graph, assignment: Mapping[VertexId, int], parts: int
) -> float:
    """Max part size / ideal part size under ``assignment``."""
    sizes = Counter(assignment[v] for v in graph.vertices())
    if not sizes or graph.num_vertices == 0:
        return 1.0
    ideal = graph.num_vertices / parts
    return max(sizes.values()) / ideal
