"""Graph fragmentation: edge-cut fragments with border bookkeeping.

Following the paper (Section 2.2), a graph ``G`` is fragmented into
``(F_1, ..., F_n)`` by a partition strategy. Each fragment ``F_i``
consists of

* the vertices *owned* by worker ``P_i`` (``V_i``),
* every edge whose source is owned (``E_i``), and
* *mirror* copies of out-neighbors owned elsewhere (``F_i.O``).

The *border nodes* of ``F_i`` — where update parameters live — are the
owned vertices known to some other fragment (``F_i.I``, i.e. targets of
cross edges) together with the mirrors (``F_i.O``). A
:class:`FragmentedGraph` additionally records, for every border vertex,
the set of fragments that host a copy; the runtime uses this to route
update-parameter messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

from repro.errors import PartitionError
from repro.graph.digraph import Graph
from repro.graph.store import GraphStore, make_store

VertexId = Hashable

#: One per-fragment mutation record — a plain tuple so effect logs can
#: travel to process-backend workers over a pipe. First element is the
#: effect kind; see :func:`apply_fragment_effects` for the vocabulary.
FragmentEffect = tuple


def apply_fragment_effects(frag: "Fragment", records: Sequence[tuple]) -> None:
    """Replay a per-fragment effect log onto ``frag``.

    The single interpreter behind ΔG mutation: the coordinator-side
    :class:`FragmentedGraph` mutators *emit* these records while applying
    them locally, and the process backend ships the same records to the
    worker that owns a copy of the fragment — both sides execute
    identical mutations, so fragment state can never diverge.
    """
    for record in records:
        kind = record[0]
        if kind == "add_vertex":
            _, v, label, props = record
            frag.graph.add_vertex(v, label, **props)
        elif kind == "add_edge":
            _, src, dst, weight, label = record
            frag.graph.add_edge(src, dst, weight, label)
        elif kind == "remove_edge":
            _, src, dst = record
            frag.graph.remove_edge(src, dst)
        elif kind == "remove_vertex":
            _, v = record
            frag.graph.remove_vertex(v)
        elif kind == "set_mirror":
            _, v, owner = record
            frag.mirrors[v] = owner
        elif kind == "drop_mirror":
            _, v = record
            frag.mirrors.pop(v, None)
        elif kind == "add_inner_border":
            _, v = record
            frag.inner_border.add(v)
        elif kind == "discard_inner_border":
            _, v = record
            frag.inner_border.discard(v)
        else:
            raise PartitionError(f"unknown fragment effect {kind!r}")


@dataclass
class Fragment:
    """One worker's fraction of the graph.

    Attributes:
        fid: fragment (worker) index in ``[0, n)``.
        graph: local subgraph — owned vertices, their out-edges, and
            mirror endpoints of cross edges.
        owned: vertex ids owned by this fragment.
        mirrors: vertex id -> owning fragment, for local mirror copies.
        inner_border: owned vertices that appear as mirrors elsewhere.
    """

    fid: int
    graph: Graph
    owned: set[VertexId]
    mirrors: dict[VertexId, int]
    inner_border: set[VertexId] = field(default_factory=set)

    @property
    def border(self) -> set[VertexId]:
        """All vertices carrying update parameters (``F_i.I ∪ F_i.O``)."""
        return self.inner_border | set(self.mirrors)

    def owns(self, v: VertexId) -> bool:
        """Whether this fragment owns ``v``."""
        return v in self.owned

    def is_mirror(self, v: VertexId) -> bool:
        """Whether ``v`` is a local mirror owned elsewhere."""
        return v in self.mirrors

    @property
    def num_owned(self) -> int:
        """Number of owned vertices."""
        return len(self.owned)

    def __repr__(self) -> str:
        return (
            f"<Fragment {self.fid} owned={len(self.owned)} "
            f"mirrors={len(self.mirrors)} border={len(self.border)}>"
        )


class FragmentedGraph:
    """The fragments of one graph plus global routing metadata."""

    def __init__(
        self,
        fragments: Sequence[Fragment],
        assignment: Mapping[VertexId, int],
        strategy: str = "unknown",
    ) -> None:
        self.fragments = list(fragments)
        self.assignment = dict(assignment)
        self.strategy = strategy
        #: fid -> effect records of the most recent mutator call (what the
        #: process backend replays on its workers' fragment copies).
        self.last_effects: dict[int, list] = {}
        # vid -> set of fids hosting a copy (owner first by convention).
        self.known_by: dict[VertexId, set[int]] = {}
        for frag in self.fragments:
            for v in frag.owned:
                self.known_by.setdefault(v, set()).add(frag.fid)
            for v in frag.mirrors:
                self.known_by.setdefault(v, set()).add(frag.fid)

    @property
    def num_fragments(self) -> int:
        """Number of fragments (= workers)."""
        return len(self.fragments)

    @property
    def store_kind(self) -> str:
        """Backing store of the fragment graphs ("dict", "csr", ...)."""
        return (
            self.fragments[0].graph.store_kind if self.fragments else "dict"
        )

    def compact(self) -> int:
        """Fold every fragment's storage overlay; returns fragments run.

        Coordinator-side only: process-backend worker copies compact on
        their own mutation thresholds (compaction is semantically
        invisible, so the two sides never diverge).
        """
        return sum(1 for f in self.fragments if f.graph.compact())

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.assignment)

    def owner_of(self, v: VertexId) -> int:
        """Fragment id owning vertex ``v``."""
        try:
            return self.assignment[v]
        except KeyError:
            raise PartitionError(f"vertex {v} not in any fragment") from None

    def fragment_of(self, v: VertexId) -> Fragment:
        """The fragment owning vertex ``v``."""
        return self.fragments[self.owner_of(v)]

    def hosts(self, v: VertexId) -> set[int]:
        """All fragment ids holding a copy (owner + mirrors)."""
        return self.known_by.get(v, set())

    # ------------------------------------------------------------------
    # Delta application (ΔG): one edge at a time, with border/mirror
    # bookkeeping for removals as well as additions. The batch-level
    # entry point is :func:`repro.core.delta.apply_delta`.
    #
    # Every mutator records the per-fragment effects it applied in
    # ``self.last_effects`` (fid -> effect records); the process backend
    # replays those records on its workers' fragment copies through the
    # same :func:`apply_fragment_effects` interpreter.
    # ------------------------------------------------------------------
    def _effect(
        self, effects: dict[int, list], fid: int, *record: object
    ) -> None:
        """Apply one effect to ``fid``'s fragment and log it."""
        rec = tuple(record)
        apply_fragment_effects(self.fragments[fid], [rec])
        effects.setdefault(fid, []).append(rec)

    def insert_edge(
        self,
        src: VertexId,
        dst: VertexId,
        weight: float = 1.0,
        label: str | None = None,
    ) -> list[int]:
        """Insert one edge; returns the fragment ids that must repair.

        The edge lands in its source-owner's local graph; a cross-fragment
        edge creates/extends the mirror of the target and marks the target
        as inner border at its owner (which is therefore also touched —
        programs with undirected semantics must export the target's value
        back across the new edge). Undirected graphs mirror symmetrically.
        """
        src_fid = self.owner_of(src)
        dst_fid = self.owner_of(dst)
        src_frag = self.fragments[src_fid]
        dst_frag = self.fragments[dst_fid]
        directed = src_frag.graph.directed
        effects: dict[int, list] = {}

        if not src_frag.graph.has_vertex(dst):
            self._effect(
                effects,
                src_fid,
                "add_vertex",
                dst,
                dst_frag.graph.vertex_label(dst),
                dict(dst_frag.graph.vertex_props(dst)),
            )
        self._effect(effects, src_fid, "add_edge", src, dst, weight, label)
        touched = [src_fid]
        if dst_fid != src_fid:
            self._effect(effects, src_fid, "set_mirror", dst, dst_fid)
            self._effect(effects, dst_fid, "add_inner_border", dst)
            self.known_by.setdefault(dst, set()).add(src_fid)
            touched.append(dst_fid)
            if not directed:
                if not dst_frag.graph.has_vertex(src):
                    self._effect(
                        effects,
                        dst_fid,
                        "add_vertex",
                        src,
                        src_frag.graph.vertex_label(src),
                        dict(src_frag.graph.vertex_props(src)),
                    )
                self._effect(
                    effects, dst_fid, "add_edge", dst, src, weight, label
                )
                self._effect(effects, dst_fid, "set_mirror", src, src_fid)
                self._effect(effects, src_fid, "add_inner_border", src)
                self.known_by.setdefault(src, set()).add(dst_fid)
        self.last_effects = effects
        return touched

    def delete_edge(self, src: VertexId, dst: VertexId) -> list[int]:
        """Remove one edge; returns the fragment ids that must repair.

        The inverse of :meth:`insert_edge`: the edge leaves the
        source-owner's local graph; when the removal strands a mirror
        (no local edge references it anymore) the mirror copy is dropped,
        ``known_by`` shrinks, and the owner's ``inner_border`` entry is
        retired once *no* fragment mirrors the vertex. The target's owner
        is always touched — in a directed graph the target's value may
        have depended on the deleted edge even though its own fragment
        never stored it.
        """
        src_fid = self.owner_of(src)
        dst_fid = self.owner_of(dst)
        src_frag = self.fragments[src_fid]
        dst_frag = self.fragments[dst_fid]
        directed = src_frag.graph.directed
        effects: dict[int, list] = {}

        if not src_frag.graph.has_edge(src, dst):
            # Match Graph.remove_edge's error without logging any effect.
            src_frag.graph.remove_edge(src, dst)
        self._effect(effects, src_fid, "remove_edge", src, dst)
        touched = [src_fid]
        if dst_fid != src_fid:
            touched.append(dst_fid)
            self._prune_mirror(effects, src_frag, dst)
            if not directed:
                self._effect(effects, dst_fid, "remove_edge", dst, src)
                self._prune_mirror(effects, dst_frag, src)
        self.last_effects = effects
        return touched

    def reweight_edge(
        self, src: VertexId, dst: VertexId, weight: float
    ) -> tuple[list[int], float]:
        """Change one edge's weight; returns (touched fids, old weight).

        No border bookkeeping changes — the edge's endpoints keep their
        copies — but the target's owner is still touched so non-monotone
        repair can invalidate values that depended on the old weight.
        """
        src_fid = self.owner_of(src)
        dst_fid = self.owner_of(dst)
        src_frag = self.fragments[src_fid]
        dst_frag = self.fragments[dst_fid]
        directed = src_frag.graph.directed
        effects: dict[int, list] = {}

        old = src_frag.graph.edge_weight(src, dst)  # GraphError if absent
        label = src_frag.graph.edge_label(src, dst)
        self._effect(effects, src_fid, "add_edge", src, dst, weight, label)
        touched = [src_fid]
        if dst_fid != src_fid:
            touched.append(dst_fid)
            if not directed:
                self._effect(
                    effects, dst_fid, "add_edge", dst, src, weight, label
                )
        self.last_effects = effects
        return touched, old

    def _prune_mirror(
        self, effects: dict[int, list], frag: Fragment, v: VertexId
    ) -> None:
        """Drop ``frag``'s mirror of ``v`` if no local edge references it."""
        if v not in frag.mirrors:
            return
        g = frag.graph
        if v in g and (g.out_degree(v) or g.in_degree(v)):
            return  # still referenced by another local edge
        owner = frag.mirrors[v]
        self._effect(effects, frag.fid, "drop_mirror", v)
        if v in g:
            self._effect(effects, frag.fid, "remove_vertex", v)
        hosts = self.known_by.get(v)
        if hosts is not None:
            hosts.discard(frag.fid)
        if not any(v in f.mirrors for f in self.fragments):
            self._effect(effects, owner, "discard_inner_border", v)

    def cross_edges(self) -> int:
        """Number of edges whose endpoints live on different fragments."""
        total = 0
        for frag in self.fragments:
            for v in frag.owned:
                for u in frag.graph.out_neighbors(v):
                    if u in frag.mirrors:
                        total += 1
        return total

    def balance(self) -> float:
        """Max fragment size over ideal size (1.0 = perfectly balanced)."""
        if not self.fragments:
            return 1.0
        ideal = max(1.0, self.num_vertices / len(self.fragments))
        return max(len(f.owned) for f in self.fragments) / ideal

    def __repr__(self) -> str:
        return (
            f"<FragmentedGraph n={self.num_fragments} "
            f"strategy={self.strategy!r} cross={self.cross_edges()}>"
        )


def expand_fragments(
    graph: Graph,
    fragmented: FragmentedGraph,
    radius: int,
    store: str | GraphStore | None = None,
) -> FragmentedGraph:
    """d-hop replication: grow each fragment's local graph by ``radius``.

    Locality-bounded queries (subgraph isomorphism, ego-pattern GPARs)
    need every match whose pivot is owned to be fully visible locally.
    Expanding each fragment with the induced subgraph over all vertices
    within ``radius`` undirected hops of its owned set makes PEval exact
    with no IncEval rounds — the strategy GRAPE uses for SubIso. The
    replication cost (extra vertices per fragment) is the space/comm
    trade-off the caller should meter at load time.

    ``store`` overrides the fragment storage backend; by default the
    expanded fragments inherit the parent graph's store (``subgraph``
    preserves it).
    """
    proto = make_store(store) if store is not None else None
    expanded: list[Fragment] = []
    for frag in fragmented.fragments:
        keep = set(frag.owned)
        frontier = set(frag.owned)
        for _ in range(radius):
            nxt: set[VertexId] = set()
            for v in frontier:
                for u in graph.neighbors(v):
                    if u not in keep:
                        nxt.add(u)
            keep |= nxt
            frontier = nxt
            if not frontier:
                break
        local = graph.subgraph(keep)
        if proto is not None and local.store_kind != proto.kind:
            local = local.with_store(proto.fresh())
        local.compact()  # steady-state layout (no-op for dict)
        mirrors = {
            v: fragmented.owner_of(v) for v in keep if v not in frag.owned
        }
        expanded.append(
            Fragment(
                fid=frag.fid,
                graph=local,
                owned=set(frag.owned),
                mirrors=mirrors,
                inner_border=set(frag.inner_border),
            )
        )
    return FragmentedGraph(
        expanded,
        fragmented.assignment,
        strategy=f"{fragmented.strategy}+expand{radius}",
    )


def build_fragments(
    graph: Graph,
    assignment: Mapping[VertexId, int],
    num_fragments: int,
    strategy: str = "unknown",
    store: str | GraphStore | None = None,
) -> FragmentedGraph:
    """Materialize edge-cut fragments from a vertex -> fragment map.

    Every vertex of ``graph`` must be assigned to a fragment id in
    ``[0, num_fragments)``. Fragment ``i`` receives its owned vertices
    (with labels/properties), all out-edges of owned vertices, and mirror
    copies (with labels/properties, so pattern matching can inspect them)
    of cross-edge targets.

    ``store`` selects the fragment storage backend (name or prototype
    instance; every fragment gets its own fresh store). By default
    fragments inherit the parent graph's store, so a CSR-backed input
    yields CSR-backed fragments with no extra plumbing.
    """
    if num_fragments < 1:
        raise PartitionError("need at least one fragment")
    for v in graph.vertices():
        fid = assignment.get(v)
        if fid is None:
            raise PartitionError(f"vertex {v} is unassigned")
        if not 0 <= fid < num_fragments:
            raise PartitionError(f"vertex {v} assigned to invalid {fid}")

    proto = make_store(store) if store is not None else graph.store
    locals_: list[Graph] = [
        Graph(directed=graph.directed, store=proto.fresh())
        for _ in range(num_fragments)
    ]
    owned: list[set[VertexId]] = [set() for _ in range(num_fragments)]
    mirrors: list[dict[VertexId, int]] = [{} for _ in range(num_fragments)]
    inner_border: list[set[VertexId]] = [set() for _ in range(num_fragments)]

    for v in graph.vertices():
        fid = assignment[v]
        owned[fid].add(v)
        locals_[fid].add_vertex(
            v, graph.vertex_label(v), **graph.vertex_props(v)
        )

    for edge in graph.edges():
        src_fid = assignment[edge.src]
        dst_fid = assignment[edge.dst]
        local = locals_[src_fid]
        if not local.has_vertex(edge.dst):
            local.add_vertex(
                edge.dst,
                graph.vertex_label(edge.dst),
                **graph.vertex_props(edge.dst),
            )
        local.add_edge(edge.src, edge.dst, edge.weight, edge.label)
        if dst_fid != src_fid:
            mirrors[src_fid][edge.dst] = dst_fid
            inner_border[dst_fid].add(edge.dst)
        if not graph.directed:
            # Stored once but owned by both endpoints' fragments.
            local_dst = locals_[dst_fid]
            if dst_fid != src_fid:
                if not local_dst.has_vertex(edge.src):
                    local_dst.add_vertex(
                        edge.src,
                        graph.vertex_label(edge.src),
                        **graph.vertex_props(edge.src),
                    )
                local_dst.add_edge(edge.dst, edge.src, edge.weight, edge.label)
                mirrors[dst_fid][edge.src] = src_fid
                inner_border[src_fid].add(edge.src)

    for local in locals_:
        # Bulk construction leaves overlay-backed stores (CSR) with a
        # tail of uncompacted arcs; fold them so fragments start from
        # their steady-state layout. No-op for the dict store.
        local.compact()

    fragments = [
        Fragment(
            fid=i,
            graph=locals_[i],
            owned=owned[i],
            mirrors=mirrors[i],
            inner_border=inner_border[i],
        )
        for i in range(num_fragments)
    ]
    return FragmentedGraph(fragments, assignment, strategy=strategy)
