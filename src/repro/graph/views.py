"""Derived graph views: ego networks and filtered copies."""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable

from repro.graph.digraph import Graph

VertexId = Hashable


def ego_subgraph(graph: Graph, center: VertexId, radius: int) -> Graph:
    """Induced subgraph of everything within ``radius`` hops of ``center``.

    Hops follow edges in *either* direction, matching the locality a
    pattern query with designated node ``x`` touches (used by the GPAR
    matcher to bound work per candidate).
    """
    seen = {center: 0}
    queue = deque([center])
    while queue:
        v = queue.popleft()
        if seen[v] == radius:
            continue
        for u in graph.neighbors(v):
            if u not in seen:
                seen[u] = seen[v] + 1
                queue.append(u)
    return graph.subgraph(seen)


def filter_vertices(
    graph: Graph, predicate: Callable[[VertexId], bool]
) -> Graph:
    """Induced subgraph over vertices satisfying ``predicate``."""
    return graph.subgraph(v for v in graph.vertices() if predicate(v))


def filter_by_label(graph: Graph, labels: set[str]) -> Graph:
    """Induced subgraph over vertices whose label is in ``labels``."""
    return filter_vertices(graph, lambda v: graph.vertex_label(v) in labels)


def largest_connected_component(graph: Graph) -> Graph:
    """Induced subgraph of the largest weakly connected component."""
    remaining = set(graph.vertices())
    best: set[VertexId] = set()
    while remaining:
        start = next(iter(remaining))
        comp = {start}
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for u in graph.neighbors(v):
                if u not in comp:
                    comp.add(u)
                    queue.append(u)
        remaining -= comp
        if len(comp) > len(best):
            best = comp
    return graph.subgraph(best)
