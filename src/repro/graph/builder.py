"""Incremental graph construction helper.

:class:`GraphBuilder` batches vertices and edges (e.g. while streaming a
file) and materializes a :class:`~repro.graph.digraph.Graph`. It also
performs optional id remapping to dense integers, which partitioners and
generators rely on for reproducible hashing.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.graph.digraph import Graph

VertexId = Hashable


class GraphBuilder:
    """Accumulates vertices/edges, then builds a Graph in one pass."""

    def __init__(self, directed: bool = True, relabel: bool = False) -> None:
        self.directed = directed
        self.relabel = relabel
        self._vertices: dict[VertexId, tuple[str | None, dict[str, object]]] = {}
        self._edges: list[tuple[VertexId, VertexId, float, str | None]] = []

    def vertex(
        self, v: VertexId, label: str | None = None, **props: object
    ) -> "GraphBuilder":
        """Add a pattern vertex (chainable)."""
        old_label, old_props = self._vertices.get(v, (None, {}))
        merged = dict(old_props)
        merged.update(props)
        self._vertices[v] = (label if label is not None else old_label, merged)
        return self

    def edge(
        self,
        src: VertexId,
        dst: VertexId,
        weight: float = 1.0,
        label: str | None = None,
    ) -> "GraphBuilder":
        """Add a pattern edge (chainable)."""
        self._edges.append((src, dst, weight, label))
        self.vertex(src)
        self.vertex(dst)
        return self

    def edges(
        self, pairs: Iterable[tuple[VertexId, VertexId]]
    ) -> "GraphBuilder":
        """Add many unweighted edges (chainable)."""
        for src, dst in pairs:
            self.edge(src, dst)
        return self

    def build(self) -> Graph:
        """Materialize the graph; with ``relabel`` ids become 0..n-1."""
        mapping: dict[VertexId, VertexId]
        if self.relabel:
            mapping = {v: i for i, v in enumerate(self._vertices)}
        else:
            mapping = {v: v for v in self._vertices}
        g = Graph(directed=self.directed)
        for v, (label, props) in self._vertices.items():
            g.add_vertex(mapping[v], label, **props)
        for src, dst, weight, label in self._edges:
            g.add_edge(mapping[src], mapping[dst], weight, label)
        return g

    @property
    def id_map(self) -> dict[VertexId, int]:
        """Original-id -> dense-id map (only meaningful with relabel)."""
        return {v: i for i, v in enumerate(self._vertices)}
