"""Graph readers and writers.

Formats:

* **edge list** — ``src dst [weight]`` per line, ``#`` comments (SNAP style,
  covers LiveJournal-like downloads),
* **DIMACS** ``.gr`` — ``p sp n m`` header and ``a u v w`` arcs (the format
  of the US road network the paper benchmarks),
* **METIS** — 1-indexed adjacency lines, read as an undirected graph,
* **JSON** — full property-graph round trip (labels and properties).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.errors import GraphError
from repro.graph.digraph import Graph


def read_edge_list(
    path: str | Path,
    directed: bool = True,
    weighted: bool = False,
) -> Graph:
    """Read a whitespace-separated edge list; ints when possible."""
    g = Graph(directed=directed)
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(f"{path}:{lineno}: expected 'src dst'")
            src, dst = _parse_id(parts[0]), _parse_id(parts[1])
            weight = float(parts[2]) if weighted and len(parts) > 2 else 1.0
            g.add_edge(src, dst, weight)
    return g


def write_edge_list(graph: Graph, path: str | Path) -> None:
    """Write ``src dst weight`` lines (one per stored edge)."""
    with open(path, "w") as fh:
        fh.write(f"# |V|={graph.num_vertices} |E|={graph.num_edges}\n")
        for edge in graph.edges():
            fh.write(f"{edge.src} {edge.dst} {edge.weight:g}\n")


def read_dimacs(path: str | Path) -> Graph:
    """Read a DIMACS shortest-path ``.gr`` file into a directed graph."""
    g = Graph(directed=True)
    declared: tuple[int, int] | None = None
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) != 4 or parts[1] != "sp":
                    raise GraphError(f"{path}:{lineno}: bad problem line")
                declared = (int(parts[2]), int(parts[3]))
            elif parts[0] == "a":
                if len(parts) != 4:
                    raise GraphError(f"{path}:{lineno}: bad arc line")
                g.add_edge(int(parts[1]), int(parts[2]), float(parts[3]))
            else:
                raise GraphError(f"{path}:{lineno}: unknown record {parts[0]!r}")
    if declared is not None:
        for v in range(1, declared[0] + 1):
            g.add_vertex(v)
    return g


def write_dimacs(graph: Graph, path: str | Path) -> None:
    """Write a directed graph as DIMACS ``.gr`` (ids must be ints >= 1)."""
    with open(path, "w") as fh:
        fh.write(f"p sp {graph.num_vertices} {graph.num_edges}\n")
        for edge in graph.edges():
            fh.write(f"a {edge.src} {edge.dst} {edge.weight:g}\n")


def read_metis(path: str | Path) -> Graph:
    """Read a METIS adjacency file as an undirected graph (0-indexed out)."""
    g = Graph(directed=False)
    with open(path) as fh:
        header: list[str] | None = None
        vid = 0
        for line in fh:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            if header is None:
                header = line.split()
                n = int(header[0])
                for v in range(n):
                    g.add_vertex(v)
                continue
            for nbr in line.split():
                g.add_edge(vid, int(nbr) - 1)
            vid += 1
    return g


def write_metis(graph: Graph, path: str | Path) -> None:
    """Write undirected adjacency in METIS format (vertices relabelled)."""
    order = {v: i for i, v in enumerate(graph.vertices())}
    lines = []
    seen = set()
    for v in graph.vertices():
        nbrs = [order[u] + 1 for u in graph.neighbors(v)]
        lines.append(" ".join(str(x) for x in sorted(nbrs)))
        for u in graph.neighbors(v):
            seen.add(frozenset((order[v], order[u])))
    with open(path, "w") as fh:
        fh.write(f"{graph.num_vertices} {len(seen)}\n")
        fh.write("\n".join(lines) + "\n")


def to_json_dict(graph: Graph) -> dict:
    """Serializable dict capturing the full property graph."""
    return {
        "directed": graph.directed,
        "store": graph.store_kind,
        "vertices": [
            {
                "id": v,
                "label": graph.vertex_label(v),
                "props": graph.vertex_props(v),
            }
            for v in graph.vertices()
        ],
        "edges": [
            {
                "src": e.src,
                "dst": e.dst,
                "weight": e.weight,
                "label": e.label,
            }
            for e in graph.edges()
        ],
    }


def from_json_dict(data: dict, store: str | None = None) -> Graph:
    """Inverse of :func:`to_json_dict`.

    ``store`` overrides the recorded storage backend; older encodings
    without a "store" key load into the default dict store.
    """
    g = Graph(
        directed=data.get("directed", True),
        store=store if store is not None else data.get("store"),
    )
    for rec in data["vertices"]:
        g.add_vertex(rec["id"], rec.get("label"), **rec.get("props", {}))
    for rec in data["edges"]:
        g.add_edge(
            rec["src"], rec["dst"], rec.get("weight", 1.0), rec.get("label")
        )
    return g


def write_json(graph: Graph, path: str | Path) -> None:
    """Write the property graph as JSON to ``path``."""
    with open(path, "w") as fh:
        json.dump(to_json_dict(graph), fh)


def read_json(path: str | Path) -> Graph:
    """Read a property graph from JSON at ``path``."""
    with open(path) as fh:
        return from_json_dict(json.load(fh))


def from_edges(
    pairs: Iterable[tuple], directed: bool = True, weighted: bool = False
) -> Graph:
    """Build a graph from (src, dst) or (src, dst, weight) tuples."""
    g = Graph(directed=directed)
    for item in pairs:
        if weighted or len(item) == 3:
            src, dst, weight = item
            g.add_edge(src, dst, weight)
        else:
            src, dst = item
            g.add_edge(src, dst)
    return g


def _parse_id(token: str):
    try:
        return int(token)
    except ValueError:
        return token
