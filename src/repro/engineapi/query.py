"""Query construction helpers (the text box of the play panel).

Each query class has a builder turning simple keyword arguments —
the kind a UI form or CLI flag produces — into the typed query object
its PIE program expects. ``build_query("sssp", source=0)`` is the
programmatic equivalent of entering a query in Fig. 3(2).
"""

from __future__ import annotations

from typing import Callable

from repro.algorithms.bfs import BFSQuery
from repro.algorithms.cc import CCQuery
from repro.algorithms.kcore import KCoreQuery
from repro.algorithms.cf import CFQuery
from repro.algorithms.keyword import KeywordQuery
from repro.algorithms.pagerank import PageRankQuery
from repro.algorithms.simulation import SimQuery
from repro.algorithms.sssp import SSSPQuery
from repro.algorithms.subiso import SubIsoQuery
from repro.errors import QueryError
from repro.graph.digraph import Graph


def _sssp(**kw) -> SSSPQuery:
    if "source" not in kw:
        raise QueryError("sssp needs source=<vertex>")
    return SSSPQuery(source=kw["source"])


def _cc(**kw) -> CCQuery:
    return CCQuery()


def _sim(**kw) -> SimQuery:
    pattern = kw.get("pattern")
    if not isinstance(pattern, Graph):
        raise QueryError("sim needs pattern=<Graph>")
    return SimQuery(pattern=pattern)


def _subiso(**kw) -> SubIsoQuery:
    pattern = kw.get("pattern")
    if not isinstance(pattern, Graph):
        raise QueryError("subiso needs pattern=<Graph>")
    pivot = kw.get("pivot")
    if pivot is None:
        pivot = next(iter(pattern.vertices()))
    return SubIsoQuery(
        pattern=pattern, pivot=pivot, max_matches=kw.get("max_matches")
    )


def _keyword(**kw) -> KeywordQuery:
    keywords = kw.get("keywords")
    if not keywords:
        raise QueryError("keyword needs keywords=<list of str>")
    return KeywordQuery(
        keywords=tuple(keywords), radius=int(kw.get("radius", 3))
    )


def _cf(**kw) -> CFQuery:
    return CFQuery(
        rank=int(kw.get("rank", 8)),
        epochs=int(kw.get("epochs", 5)),
        lr=float(kw.get("lr", 0.02)),
        reg=float(kw.get("reg", 0.05)),
        seed=int(kw.get("seed", 7)),
        rating_label=kw.get("rating_label", "rate"),
    )


def _pagerank(**kw) -> PageRankQuery:
    return PageRankQuery(
        damping=float(kw.get("damping", 0.85)),
        tolerance=float(kw.get("tolerance", 1e-6)),
    )


def _bfs(**kw) -> BFSQuery:
    if "source" not in kw:
        raise QueryError("bfs needs source=<vertex>")
    max_depth = kw.get("max_depth")
    return BFSQuery(
        source=kw["source"],
        max_depth=int(max_depth) if max_depth is not None else None,
    )


def _kcore(**kw) -> KCoreQuery:
    return KCoreQuery()


_BUILDERS: dict[str, Callable[..., object]] = {
    "bfs": _bfs,
    "kcore": _kcore,
    "sssp": _sssp,
    "cc": _cc,
    "sim": _sim,
    "subiso": _subiso,
    "keyword": _keyword,
    "cf": _cf,
    "pagerank": _pagerank,
}


def build_query(query_class: str, **kwargs) -> object:
    """Construct a typed query object for a registered query class."""
    try:
        builder = _BUILDERS[query_class]
    except KeyError:
        raise QueryError(
            f"unknown query class {query_class!r}; "
            f"available: {sorted(_BUILDERS)}"
        ) from None
    return builder(**kwargs)


def query_classes() -> list[str]:
    """Names of all known query classes."""
    return sorted(_BUILDERS)
