"""Chaos harness: run a registered program under a fault-plan matrix.

``grape chaos`` takes one graph + query, computes the fault-free answer,
then replays the run under a matrix of fault plans (one per fault
class, or a custom plan file) with a checkpoint policy installed, and
reports resilience: did the run still produce the fault-free answer (or
raise the documented error), and what did surviving the faults cost —
extra supersteps, extra simulated time, retries, recoveries, rounds
lost. Everything is seed-deterministic, so a resilience report is
reproducible evidence, not an anecdote.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field

from repro.core.checkpoint import CheckpointPolicy
from repro.core.engine import GrapeEngine
from repro.engineapi.registry import get_program
from repro.errors import GrapeError
from repro.graph.digraph import Graph
from repro.graph.fragment import build_fragments
from repro.partition.registry import get_partitioner
from repro.runtime.faults import (
    CorruptFault,
    CrashFault,
    DropFault,
    DuplicateFault,
    FaultPlan,
    StragglerFault,
)
from repro.runtime.metrics import RunMetrics
from repro.storage.dfs import SimulatedDFS


def standard_plans(seed: int = 7) -> dict[str, FaultPlan]:
    """The built-in chaos matrix: one representative plan per fault class."""
    return {
        "crash-fatal": FaultPlan(
            faults=(CrashFault(at_superstep=3, fatal=True),), seed=seed
        ),
        "crash-transient": FaultPlan(
            faults=(CrashFault(at_superstep=2, fatal=False, times=2),),
            seed=seed,
        ),
        "drop": FaultPlan(
            faults=(DropFault(probability=0.25, times=8),), seed=seed
        ),
        "duplicate": FaultPlan(
            faults=(DuplicateFault(probability=0.25, times=8),), seed=seed
        ),
        "corrupt": FaultPlan(
            faults=(CorruptFault(probability=0.25, times=8),), seed=seed
        ),
        "straggler": FaultPlan(
            faults=(StragglerFault(at_superstep=1, delay=0.05, times=3),),
            seed=seed,
        ),
    }


def answers_match(a: object, b: object, tol: float = 1e-9) -> bool:
    """Deep answer comparison with float tolerance (inf-safe)."""
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            answers_match(a[k], b[k], tol) for k in a
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            answers_match(x, y, tol) for x, y in zip(a, b)
        )
    if isinstance(a, float) or isinstance(b, float):
        try:
            return a == b or abs(a - b) <= tol
        except TypeError:
            return False
    return a == b


@dataclass
class ChaosCase:
    """Outcome of one fault plan replay."""

    name: str
    correct: bool = False
    error: str | None = None
    supersteps: int = 0
    simulated_time: float = 0.0
    faults: dict[str, float] = field(default_factory=dict)

    @property
    def outcome(self) -> str:
        """"ok" (answer matched), "error" (typed error), or "WRONG"."""
        if self.error is not None:
            return "error"
        return "ok" if self.correct else "WRONG"


@dataclass
class ChaosReport:
    """Resilience report: baseline + one :class:`ChaosCase` per plan."""

    program: str
    baseline_supersteps: int
    baseline_time: float
    cases: list[ChaosCase] = field(default_factory=list)

    @property
    def survived_all(self) -> bool:
        """No case produced a silently wrong answer."""
        return all(c.outcome != "WRONG" for c in self.cases)

    def to_dict(self) -> dict:
        """JSON-ready form of the report."""
        return {
            "program": self.program,
            "baseline": {
                "supersteps": self.baseline_supersteps,
                "simulated_time": self.baseline_time,
            },
            "survived_all": self.survived_all,
            "cases": [
                {
                    "name": c.name,
                    "outcome": c.outcome,
                    "correct": c.correct,
                    "error": c.error,
                    "supersteps": c.supersteps,
                    "simulated_time": c.simulated_time,
                    "extra_supersteps": c.supersteps - self.baseline_supersteps
                    if c.error is None else None,
                    "faults": c.faults,
                }
                for c in self.cases
            ],
        }

    def to_json(self) -> str:
        """The report as indented JSON."""
        return json.dumps(self.to_dict(), indent=2)

    def format(self) -> str:
        """Human-readable resilience table."""
        lines = [
            f"chaos: {self.program} — baseline "
            f"{self.baseline_supersteps} supersteps, "
            f"{self.baseline_time:.4f}s simulated",
            "",
            f"  {'plan':<16} {'outcome':<8} {'supersteps':>10} "
            f"{'time(s)':>9}  recovery cost",
        ]
        for c in self.cases:
            if c.error is not None:
                cost = f"raised: {c.error}"
                steps = "-"
                time_s = "-"
            else:
                extra = c.supersteps - self.baseline_supersteps
                parts = []
                if c.faults.get("retries"):
                    parts.append(f"{int(c.faults['retries'])} retries")
                if c.faults.get("recoveries"):
                    parts.append(
                        f"{int(c.faults['recoveries'])} recoveries "
                        f"({int(c.faults.get('rounds_lost', 0))} rounds lost)"
                    )
                if c.faults.get("retransmissions"):
                    parts.append(
                        f"{int(c.faults['retransmissions'])} retransmits"
                    )
                if c.faults.get("duplicates_discarded"):
                    parts.append(
                        f"{int(c.faults['duplicates_discarded'])} dups dropped"
                    )
                if c.faults.get("straggler_delay"):
                    parts.append(
                        f"{c.faults['straggler_delay']:.2f}s straggle"
                    )
                parts.append(f"{extra:+d} supersteps")
                cost = ", ".join(parts)
                steps = str(c.supersteps)
                time_s = f"{c.simulated_time:.4f}"
            lines.append(
                f"  {c.name:<16} {c.outcome:<8} {steps:>10} {time_s:>9}  "
                f"{cost}"
            )
        lines.append("")
        verdict = (
            "all fault classes absorbed or detected"
            if self.survived_all
            else "SILENT WRONG ANSWERS — resilience hole"
        )
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)


def run_chaos(
    graph: Graph,
    program_name: str,
    query: object,
    workers: int = 4,
    partition: str = "hash",
    seed: int = 7,
    plans: dict[str, FaultPlan] | None = None,
    checkpoint_every: int = 1,
    program_kwargs: dict | None = None,
) -> ChaosReport:
    """Replay one query under every plan; return the resilience report.

    Each case gets a fresh program instance, a fresh checkpoint
    namespace (so fatal crashes recover in-run) and the plan's own
    deterministic injector.
    """
    plans = plans if plans is not None else standard_plans(seed)
    program_kwargs = program_kwargs or {}
    assignment = get_partitioner(partition)(graph, workers)
    fragmented = build_fragments(graph, assignment, workers, partition)
    engine = GrapeEngine(fragmented)

    baseline = engine.run(get_program(program_name, **program_kwargs), query)
    report = ChaosReport(
        program=program_name,
        baseline_supersteps=baseline.metrics.num_supersteps,
        baseline_time=baseline.metrics.total_time,
    )

    with tempfile.TemporaryDirectory() as tmp:
        dfs = SimulatedDFS(tmp)
        for name, plan in plans.items():
            case = ChaosCase(name=name)
            policy = CheckpointPolicy(
                dfs, every=checkpoint_every, tag=f"chaos-{name}", keep=3
            )
            try:
                result = engine.run(
                    get_program(program_name, **program_kwargs),
                    query,
                    checkpoint=policy,
                    faults=plan,
                )
            except GrapeError as exc:
                case.error = f"{type(exc).__name__}: {exc}"
            else:
                case.correct = answers_match(result.answer, baseline.answer)
                case.supersteps = result.metrics.num_supersteps
                case.simulated_time = result.metrics.total_time
                case.faults = {
                    k: v
                    for k, v in result.metrics.faults.as_dict().items()
                    if v
                }
            report.cases.append(case)
    return report


def metrics_fault_summary(metrics: RunMetrics) -> str:
    """One line of fault counters (for reports and examples)."""
    f = metrics.faults
    return (
        f"injected={f.total_injected} retries={f.retries} "
        f"recoveries={f.recoveries} rounds_lost={f.rounds_lost} "
        f"recovery_supersteps={f.recovery_supersteps} "
        f"retransmissions={f.retransmissions}"
    )
