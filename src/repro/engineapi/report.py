"""Analytics formatting — the text twin of Fig. 3(4)/(5).

``format_report`` renders a run's computation/communication costs with
the fine-grained PEval vs IncEval breakdown the demo visualizes;
``comparison_table`` lines up several engines' results like Table 1.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.engine import GrapeResult
from repro.runtime.metrics import RunMetrics


def format_report(result: GrapeResult, title: str = "GRAPE run") -> str:
    """Human-readable per-run report with phase breakdown."""
    m = result.metrics
    lines = [
        title,
        "=" * len(title),
        f"engine             {m.engine}",
        f"workers            {m.num_workers}",
        f"supersteps         {m.num_supersteps}",
        f"simulated time     {m.total_time:.6f} s",
        f"communication      {m.communication_mb:.6f} MB "
        f"({m.total_messages} messages)",
        f"load imbalance     {m.load_imbalance():.3f}",
        "",
        "phase breakdown (simulated seconds):",
    ]
    for phase, secs in sorted(m.phase_breakdown().items()):
        lines.append(f"  {phase:<12} {secs:.6f}")
    if result.rounds:
        lines.append("")
        lines.append("IncEval rounds (params shipped / applied / active):")
        for info in result.rounds:
            lines.append(
                f"  round {info.round_index:>3}: "
                f"{info.params_shipped:>8} / {info.params_applied:>8} / "
                f"{info.active_workers:>3}"
            )
    if result.checker is not None:
        status = "OK" if result.checker.ok else (
            f"{len(result.checker.violations)} VIOLATIONS"
        )
        lines.append("")
        lines.append(
            f"monotonicity       {status} "
            f"({result.checker.writes_seen} writes checked)"
        )
    return "\n".join(lines)


def comparison_table(
    results: Mapping[str, RunMetrics],
    time_label: str = "Time(s)",
    comm_label: str = "Comm.(MB)",
) -> str:
    """Table-1-style comparison of several runs.

    ``results`` maps a system name to its metrics; rows keep insertion
    order so callers control the presentation.
    """
    name_w = max(len("System"), max((len(k) for k in results), default=0))
    header = (
        f"{'System':<{name_w}}  {time_label:>12}  {comm_label:>12}  "
        f"{'Supersteps':>10}"
    )
    lines = [header, "-" * len(header)]
    for name, metrics in results.items():
        lines.append(
            f"{name:<{name_w}}  {metrics.total_time:>12.4f}  "
            f"{metrics.communication_mb:>12.4f}  "
            f"{metrics.num_supersteps:>10}"
        )
    return "\n".join(lines)
