"""The GRAPE API library: PIE programs registered by name ("plug").

Developers plug PIE programs into the library (Fig. 3(1)); end users
pick them by name in the play panel. The six demo query classes and the
PageRank extension are pre-registered.
"""

from __future__ import annotations

from typing import Callable

from repro.core.pie import PIEProgram
from repro.errors import RegistryError

_FACTORIES: dict[str, Callable[..., PIEProgram]] = {}


def register_program(
    name: str,
    factory: Callable[..., PIEProgram],
    replace: bool = False,
    validate: bool = False,
) -> None:
    """Register a factory producing a PIE program under ``name``.

    With ``validate=True`` the factory's source is statically verified
    by grape-lint (:mod:`repro.analysis`) before registration and
    error-severity findings raise
    :class:`~repro.errors.AnalysisError` — the guarantee-before-execution
    posture for untrusted plugged-in programs. Only class factories can
    be verified; opaque callables (lambdas, partials) are rejected.
    """
    if name in _FACTORIES and not replace:
        raise RegistryError(f"PIE program {name!r} already registered")
    if validate:
        import inspect

        from repro.analysis import analyze_program, require_clean
        from repro.errors import AnalysisError

        if not inspect.isclass(factory):
            raise AnalysisError(
                f"cannot statically verify {factory!r}: validate=True "
                "requires a PIEProgram class as the factory"
            )
        require_clean(
            analyze_program(factory),
            subject=f"PIE program {name!r} ({factory.__qualname__})",
        )
    _FACTORIES[name] = factory


def get_program(name: str, **kwargs) -> PIEProgram:
    """Instantiate a registered program (kwargs to its constructor)."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise RegistryError(
            f"unknown PIE program {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    return factory(**kwargs)


def available_programs() -> list[str]:
    """Names of all registered PIE programs."""
    return sorted(_FACTORIES)


def _register_builtins() -> None:
    from repro.algorithms.bfs import BFSProgram
    from repro.algorithms.cc import CCProgram
    from repro.algorithms.kcore import KCoreProgram
    from repro.algorithms.cf import CFProgram
    from repro.algorithms.keyword import KeywordProgram
    from repro.algorithms.pagerank import PageRankProgram
    from repro.algorithms.simulation import SimProgram
    from repro.algorithms.sssp import SSSPProgram
    from repro.algorithms.subiso import SubIsoProgram

    for name, factory in (
        ("sssp", SSSPProgram),
        ("cc", CCProgram),
        ("sim", SimProgram),
        ("subiso", SubIsoProgram),
        ("keyword", KeywordProgram),
        ("cf", CFProgram),
        ("pagerank", PageRankProgram),  # needs total_vertices=...
        ("bfs", BFSProgram),
        ("kcore", KCoreProgram),
    ):
        if name not in _FACTORIES:
            register_program(name, factory)


_register_builtins()
