"""Command-line front end: generate graphs, run queries, compare engines.

Examples::

    grape run --graph road:40x40 --query sssp --source 0 --workers 8
    grape run --graph social:2000 --query cc --partition multilevel
    grape partitions --graph power:5000 --workers 16
    grape serve --trace benchmarks/traces/service_workload.json
    grape chaos --graph road:20x20 --query sssp --source 0
    grape lint examples/ src/repro/algorithms/
    grape classes

``grape lint`` exit codes: 0 = clean, 1 = unsuppressed findings,
2 = usage error (bad path, unreadable source).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.engine import MODES
from repro.engineapi.query import build_query, query_classes
from repro.engineapi.registry import available_programs, get_program
from repro.engineapi.report import format_report
from repro.engineapi.session import Session
from repro.errors import GrapeError
from repro.graph.digraph import Graph
from repro.graph.generators import graph_from_spec
from repro.partition.base import evaluate_partition
from repro.partition.registry import available_strategies, get_partitioner
from repro.graph.store import STORES
from repro.runtime.backends import BACKENDS


def _make_graph(spec: str, store: str | None = None) -> Graph:
    """Parse ``kind:params`` graph specs used by the CLI."""
    return graph_from_spec(spec, store=store)


def _cmd_run(args: argparse.Namespace) -> int:
    import json

    graph = _make_graph(args.graph, getattr(args, "store", None))
    tracer = None
    if args.trace_out:
        from repro.obs import Tracer

        tracer = Tracer()
    session = Session(
        graph,
        num_workers=args.workers,
        partition=args.partition,
        check_monotonic=args.check_monotonic,
        tracer=tracer,
        backend=args.backend,
        mode=getattr(args, "mode", "strict"),
    )
    kwargs: dict[str, object] = {}
    if args.source is not None:
        kwargs["source"] = args.source
    if args.keywords:
        kwargs["keywords"] = args.keywords.split(",")
    query = build_query(args.query, **kwargs)
    program_kwargs: dict[str, object] = {}
    if args.query == "pagerank":
        program_kwargs["total_vertices"] = graph.num_vertices
    program = get_program(args.query, **program_kwargs)
    repair = None
    try:
        if args.updates:
            from repro.core.delta import GraphDelta

            try:
                with open(args.updates, encoding="utf-8") as fh:
                    delta = GraphDelta.from_dict(json.load(fh))
            except (OSError, json.JSONDecodeError) as exc:
                raise GrapeError(
                    f"cannot read updates file {args.updates}: {exc}"
                )
            cold = session.run(program, query, keep_state=True)
            result = session.engine().run_incremental(
                program, query, cold.state, delta
            )
            repair = result.repair
        else:
            result = session.run(program, query)
    finally:
        session.close()
    if args.json:
        payload = {
            "query": args.query,
            "graph": args.graph,
            "metrics": result.metrics.as_dict(),
            "rounds": [
                {
                    "round_index": r.round_index,
                    "params_shipped": r.params_shipped,
                    "params_applied": r.params_applied,
                    "active_workers": r.active_workers,
                }
                for r in result.rounds
            ],
        }
        if repair is not None:
            payload["repair"] = repair.as_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_report(result, title=f"{args.query} on {args.graph}"))
        if repair is not None:
            print(
                f"delta repair: mode={repair.mode} "
                f"safe_ops={repair.safe_ops} unsafe_ops={repair.unsafe_ops} "
                f"invalidated={repair.invalidated} resets={repair.resets} "
                f"rounds={repair.invalidation_rounds}"
            )
    if tracer is not None:
        from repro.obs import write_chrome_trace

        events = write_chrome_trace(tracer, args.trace_out)
        print(
            f"trace: {events} events -> {args.trace_out} "
            "(open in chrome://tracing or ui.perfetto.dev)",
            file=sys.stderr,
        )
    return 0


def _cmd_partitions(args: argparse.Namespace) -> int:
    graph = _make_graph(args.graph)
    print(
        f"partition quality on {args.graph} "
        f"(|V|={graph.num_vertices}, |E|={graph.num_edges}, "
        f"{args.workers} parts)"
    )
    for name in available_strategies():
        partitioner = get_partitioner(name)
        assignment = partitioner(graph, args.workers)
        report = evaluate_partition(
            graph, assignment, args.workers, strategy=name
        )
        print(f"  {report}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    """Table-1-style comparison of all engines on one traversal query."""
    from repro.algorithms.sssp import SSSPProgram, SSSPQuery
    from repro.baselines.blogel import BlogelEngine
    from repro.baselines.blogel_programs import BlogelSSSP
    from repro.baselines.gas import GASEngine
    from repro.baselines.gas_programs import GASSSSP
    from repro.baselines.pregel import PregelEngine
    from repro.baselines.pregel_programs import PregelSSSP
    from repro.core.engine import GrapeEngine
    from repro.engineapi.report import comparison_table
    from repro.graph.fragment import build_fragments

    graph = _make_graph(args.graph)
    source = args.source if args.source is not None else 0
    fragments = {
        name: build_fragments(
            graph, get_partitioner(name)(graph, args.workers),
            args.workers, name,
        )
        for name in ("hash", "bfs", "multilevel")
    }
    results = {
        "Giraph (vertex-centric)": PregelEngine(fragments["hash"]).run(
            PregelSSSP(source=source)
        ).metrics,
        "GraphLab (GAS)": GASEngine(graph, fragments["hash"]).run(
            GASSSSP(source=source)
        ).metrics,
        "Blogel (block-centric)": BlogelEngine(fragments["bfs"]).run(
            BlogelSSSP(source=source)
        ).metrics,
        "GRAPE (PIE)": GrapeEngine(fragments["multilevel"]).run(
            SSSPProgram(), SSSPQuery(source=source)
        ).metrics,
    }
    print(
        f"SSSP on {args.graph} with {args.workers} workers "
        "(each system as deployed)\n"
    )
    print(comparison_table(results))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Statically verify PIE programs (grape-lint)."""
    from repro.analysis import (
        analyze_paths,
        findings_to_json,
        format_findings,
        rule_table,
        summary_line,
    )
    from repro.analysis.runner import active

    if args.rules:
        print(rule_table())
        return 0
    if not args.paths:
        print("error: lint needs at least one file or directory",
              file=sys.stderr)
        return 2
    findings = analyze_paths(args.paths)
    if args.json:
        print(findings_to_json(findings))
    else:
        report = format_findings(
            findings, show_suppressed=args.show_suppressed
        )
        if report:
            print(report)
            print()
        print(summary_line(findings))
    return 1 if active(findings, min_severity=args.min_severity) else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run the fault-injection matrix and print a resilience report."""
    import json

    from repro.engineapi.chaos import run_chaos, standard_plans
    from repro.runtime.faults import FaultPlan

    graph = _make_graph(args.graph)
    kwargs: dict[str, object] = {}
    if args.source is not None:
        kwargs["source"] = args.source
    if args.keywords:
        kwargs["keywords"] = args.keywords.split(",")
    query = build_query(args.query, **kwargs)
    program_kwargs: dict[str, object] = {}
    if args.query == "pagerank":
        program_kwargs["total_vertices"] = graph.num_vertices

    if args.plan:
        try:
            with open(args.plan, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise GrapeError(f"cannot read fault plan {args.plan}: {exc}")
        plans = {"custom": FaultPlan.from_dict(data)}
    else:
        plans = standard_plans(args.seed)
        if args.classes:
            wanted = args.classes.split(",")
            unknown = [c for c in wanted if c not in plans]
            if unknown:
                raise GrapeError(
                    f"unknown fault classes {unknown}; "
                    f"available: {sorted(plans)}"
                )
            plans = {name: plans[name] for name in wanted}

    report = run_chaos(
        graph,
        args.query,
        query,
        workers=args.workers,
        partition=args.partition,
        seed=args.seed,
        plans=plans,
        program_kwargs=program_kwargs,
    )
    if args.json:
        print(report.to_json())
    else:
        print(report.format())
    return 0 if report.survived_all else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Replay a JSON workload trace against a GrapeService or a fleet.

    With ``--replicas N > 1`` the trace replays through a
    :class:`~repro.service.fleet.FleetRouter`: ``--chaos-seed`` injects
    the seed-deterministic replica fault mix, ``--deadline`` bounds each
    query in simulated seconds, and the exit code is 0 only if every
    admitted query was answered (fresh or tagged-stale) and every
    rejoin audit passed.
    """
    from repro.service.trace import load_trace, replay_trace

    trace = load_trace(args.trace)
    verify = False if args.no_verify else None
    tracer = None
    if args.trace_out:
        from repro.obs import Tracer

        tracer = Tracer()
    if args.replicas > 1:
        from repro.service.fleet import default_chaos_plan, replay_fleet_trace

        if args.store is not None:
            raise GrapeError(
                "--store applies to single-service replay; the fleet "
                "manages its replicas' storage itself"
            )
        if args.backend != "simulated":
            raise GrapeError(
                "--replicas > 1 serves through the simulated fleet; "
                "--backend process is single-service only"
            )
        faults = None
        if args.chaos_seed is not None:
            faults = default_chaos_plan(args.chaos_seed, args.chaos_rate)
        _, report = replay_fleet_trace(
            trace,
            replicas=args.replicas,
            graph_spec=args.graph,
            faults=faults,
            deadline=args.deadline,
            max_queries=args.max_queries,
            verify=verify,
            tracer=tracer,
        )
    else:
        _, report = replay_trace(
            trace,
            graph_spec=args.graph,
            max_queries=args.max_queries,
            verify=verify,
            tracer=tracer,
            mode=args.drain_mode,
            backend=args.backend,
            store=args.store,
        )
    if args.json:
        print(report.to_json())
    else:
        print(report.format())
    if tracer is not None:
        from repro.obs import write_chrome_trace

        events = write_chrome_trace(tracer, args.trace_out)
        print(
            f"trace: {events} events -> {args.trace_out} "
            "(open in chrome://tracing or ui.perfetto.dev)",
            file=sys.stderr,
        )
    return 0 if report.survived else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    """A/B the execution backends on one query (wall clock + equivalence).

    Runs the same query through every requested backend, checks the
    answers are byte-identical (the simulator is the oracle), and
    reports per-backend median wall-clock seconds over ``--repeat``
    runs. Worker processes persist across repeats, so process-backend
    numbers exclude pool startup after the first (warmup) run.
    """
    import json
    import statistics
    import time

    from repro.service.service import canonical_answer_bytes

    graph = _make_graph(args.graph, getattr(args, "store", None))
    kwargs: dict[str, object] = {}
    if args.source is not None:
        kwargs["source"] = args.source
    if args.keywords:
        kwargs["keywords"] = args.keywords.split(",")
    query = build_query(args.query, **kwargs)
    program_kwargs: dict[str, object] = {}
    if args.query == "pagerank":
        program_kwargs["total_vertices"] = graph.num_vertices
    program = get_program(args.query, **program_kwargs)

    backends = args.backends.split(",")
    rows: dict[str, dict] = {}
    answers: dict[str, bytes] = {}
    for backend in backends:
        session = Session(
            graph,
            num_workers=args.workers,
            partition=args.partition,
            backend=backend,
        )
        try:
            times: list[float] = []
            result = session.run(program, query)  # warmup (starts pool)
            answers[backend] = canonical_answer_bytes(result.answer)
            for _ in range(args.repeat):
                t0 = time.perf_counter()
                result = session.run(program, query)
                times.append(time.perf_counter() - t0)
        finally:
            session.close()
        rows[backend] = {
            "median_s": statistics.median(times),
            "min_s": min(times),
            "supersteps": result.metrics.num_supersteps,
        }
    baseline = rows[backends[0]]["median_s"]
    for backend in backends:
        rows[backend]["speedup"] = (
            baseline / rows[backend]["median_s"]
            if rows[backend]["median_s"] > 0
            else float("inf")
        )
    equivalent = len(set(answers.values())) == 1
    if args.json:
        print(
            json.dumps(
                {
                    "graph": args.graph,
                    "query": args.query,
                    "workers": args.workers,
                    "repeat": args.repeat,
                    "answers_identical": equivalent,
                    "backends": rows,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(
            f"{args.query} on {args.graph}, {args.workers} workers, "
            f"median of {args.repeat} (first backend = baseline)"
        )
        for backend in backends:
            row = rows[backend]
            print(
                f"  {backend:<10} {row['median_s'] * 1000:9.1f} ms  "
                f"speedup {row['speedup']:.2f}x  "
                f"({row['supersteps']} supersteps)"
            )
        print(
            "answers byte-identical across backends"
            if equivalent
            else "ANSWER MISMATCH between backends"
        )
    return 0 if equivalent else 1


def _cmd_report(args: argparse.Namespace) -> int:
    """Render the straggler/skew report of an exported Chrome trace."""
    import json

    from repro.obs import report_from_chrome

    try:
        with open(args.trace, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise GrapeError(f"cannot read trace file {args.trace}: {exc}")
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise GrapeError(
            f"{args.trace} is not a Chrome trace_event export "
            "(missing 'traceEvents'); produce one with "
            "grape run/serve --trace-out"
        )
    print(report_from_chrome(data), end="")
    return 0


def _cmd_classes(args: argparse.Namespace) -> int:
    print("registered PIE programs:", ", ".join(available_programs()))
    print("query classes:", ", ".join(query_classes()))
    print("partition strategies:", ", ".join(available_strategies()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI parser."""
    parser = argparse.ArgumentParser(
        prog="grape",
        description="GRAPE reproduction: parallel graph query engine",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a query on a generated graph")
    run.add_argument("--graph", required=True, help="road:RxC|power:N|social:N")
    run.add_argument("--query", required=True, choices=query_classes())
    run.add_argument("--workers", type=int, default=4)
    run.add_argument("--partition", default="hash")
    run.add_argument("--source", type=int, default=None)
    run.add_argument("--keywords", default=None)
    run.add_argument("--check-monotonic", action="store_true")
    run.add_argument(
        "--backend", choices=list(BACKENDS), default="simulated",
        help="execution backend: simulated (deterministic in-process "
             "cluster) or process (pool of OS worker processes; "
             "byte-identical answers)",
    )
    run.add_argument(
        "--store", choices=list(STORES), default=None,
        help="fragment storage backend: dict (adjacency dicts, the default) or csr (compact array rows with a delta-aware overlay; byte-identical answers)",
    )
    run.add_argument(
        "--mode", choices=list(MODES), default="strict",
        help="superstep engine: strict (BSP lockstep, the default) or "
             "relaxed (pipelined waves over per-channel FIFOs for "
             "aggregator-monotone programs; byte-identical answers, "
             "lower virtual makespan)",
    )
    run.add_argument(
        "--updates", default=None, metavar="FILE.json",
        help="after a cold run, apply this ΔG batch "
             '({"insert": [[src,dst,w?]...], "delete": [[src,dst]...], '
             '"reweight": [[src,dst,w]...]}) and repair incrementally',
    )
    run.add_argument(
        "--json", action="store_true",
        help="emit run metrics as JSON (RunMetrics.as_dict schema)",
    )
    run.add_argument(
        "--trace-out", default=None, metavar="FILE.json",
        help="export a Chrome trace_event span trace of the run "
             "(open in chrome://tracing or ui.perfetto.dev)",
    )
    run.set_defaults(func=_cmd_run)

    serve = sub.add_parser(
        "serve", help="replay a JSON workload trace against a query service"
    )
    serve.add_argument(
        "--trace", required=True, metavar="FILE.json",
        help="workload trace (queries + updates); see repro.service.trace",
    )
    serve.add_argument(
        "--graph", default=None,
        help="override the trace's graph spec (road:RxC|power:N|social:N)",
    )
    serve.add_argument(
        "--max-queries", type=int, default=None,
        help="stop after this many trace queries (smoke-test knob)",
    )
    serve.add_argument(
        "--no-verify", action="store_true",
        help="skip auditing standing answers against full recomputation",
    )
    serve.add_argument(
        "--replicas", type=int, default=1,
        help="serve through a fleet of N service replicas (N > 1) with "
             "failover, hedging and stale-tagged degraded answers",
    )
    serve.add_argument(
        "--chaos-seed", type=int, default=None, metavar="S",
        help="inject the seed-deterministic replica fault mix "
             "(crashes, stragglers, update lag); fleet mode only",
    )
    serve.add_argument(
        "--chaos-rate", type=float, default=0.1,
        help="overall fault rate for --chaos-seed (default 0.1)",
    )
    serve.add_argument(
        "--deadline", type=float, default=None, metavar="D",
        help="per-query deadline in simulated seconds; past it the fleet "
             "degrades to stale-tagged answers instead of dropping",
    )
    serve.add_argument(
        "--drain-mode", choices=["batch", "event"], default="batch",
        help="single-service drain discipline: batch (priority order) or "
             "event (admissions interleave with lane completions)",
    )
    serve.add_argument(
        "--backend", choices=list(BACKENDS), default="simulated",
        help="execution backend for dispatched engine runs "
             "(single-service mode only; the fleet stays simulated)",
    )
    serve.add_argument(
        "--store", choices=list(STORES), default=None,
        help="fragment storage backend: dict (adjacency dicts, the default) or csr (compact array rows with a delta-aware overlay; byte-identical answers)",
    )
    serve.add_argument("--json", action="store_true",
                       help="machine-readable service report")
    serve.add_argument(
        "--trace-out", default=None, metavar="FILE.json",
        help="export a Chrome trace_event span trace of the replay "
             "(service lanes + every engine run it dispatched)",
    )
    serve.set_defaults(func=_cmd_serve)

    report = sub.add_parser(
        "report",
        help="straggler/skew report from an exported --trace-out file",
    )
    report.add_argument(
        "trace", metavar="TRACE.json",
        help="Chrome trace_event export produced by grape run/serve",
    )
    report.set_defaults(func=_cmd_report)

    parts = sub.add_parser(
        "partitions", help="compare partition strategies on a graph"
    )
    parts.add_argument("--graph", required=True)
    parts.add_argument("--workers", type=int, default=8)
    parts.set_defaults(func=_cmd_partitions)

    compare = sub.add_parser(
        "compare", help="Table-1-style engine comparison on SSSP"
    )
    compare.add_argument("--graph", required=True)
    compare.add_argument("--workers", type=int, default=8)
    compare.add_argument("--source", type=int, default=None)
    compare.set_defaults(func=_cmd_compare)

    bench = sub.add_parser(
        "bench",
        help="A/B the execution backends on one query (wall clock + "
             "byte-equivalence)",
    )
    bench.add_argument("--graph", required=True,
                       help="road:RxC|power:N|social:N")
    bench.add_argument("--query", required=True, choices=query_classes())
    bench.add_argument("--workers", type=int, default=4)
    bench.add_argument("--partition", default="hash")
    bench.add_argument("--source", type=int, default=None)
    bench.add_argument("--keywords", default=None)
    bench.add_argument(
        "--backends", default="simulated,process",
        help="comma-separated backends to compare; the first is the "
             "speedup baseline (default: simulated,process)",
    )
    bench.add_argument(
        "--repeat", type=int, default=3,
        help="timed runs per backend after one untimed warmup (default 3)",
    )
    bench.add_argument(
        "--store", choices=list(STORES), default=None,
        help="fragment storage backend: dict (adjacency dicts, the default) or csr (compact array rows with a delta-aware overlay; byte-identical answers)",
    )
    bench.add_argument("--json", action="store_true",
                       help="machine-readable A/B results")
    bench.set_defaults(func=_cmd_bench)

    lint = sub.add_parser(
        "lint", help="statically verify PIE programs (grape-lint)"
    )
    lint.add_argument(
        "paths", nargs="*", help="files or directories to lint"
    )
    lint.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    lint.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print pragma-suppressed findings",
    )
    lint.add_argument(
        "--min-severity",
        choices=["info", "warning", "error"],
        default="info",
        help="findings below this severity do not affect the exit code",
    )
    lint.add_argument(
        "--rules", action="store_true", help="print the rule catalog and exit"
    )
    lint.set_defaults(func=_cmd_lint)

    chaos = sub.add_parser(
        "chaos",
        help="run a fault-injection matrix and report resilience",
    )
    chaos.add_argument("--graph", required=True,
                       help="road:RxC|power:N|social:N")
    chaos.add_argument("--query", required=True, choices=query_classes())
    chaos.add_argument("--workers", type=int, default=4)
    chaos.add_argument("--partition", default="hash")
    chaos.add_argument("--source", type=int, default=None)
    chaos.add_argument("--keywords", default=None)
    chaos.add_argument("--seed", type=int, default=7,
                       help="fault-plan RNG seed (runs are reproducible)")
    chaos.add_argument(
        "--classes", default=None,
        help="comma-separated subset of the standard matrix "
             "(crash-fatal,crash-transient,drop,duplicate,corrupt,straggler)",
    )
    chaos.add_argument(
        "--plan", default=None, metavar="FILE.json",
        help="run one custom FaultPlan from a JSON file instead",
    )
    chaos.add_argument("--json", action="store_true",
                       help="machine-readable report")
    chaos.set_defaults(func=_cmd_chaos)

    classes = sub.add_parser("classes", help="list registered components")
    classes.set_defaults(func=_cmd_classes)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except GrapeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
