"""Top layers of Fig. 2: the GRAPE API library and parallel query engine.

* :mod:`registry` — the "plug" panel: PIE programs registered by name;
* :mod:`session` — the "play" panel: pick a program, a graph, a
  partition strategy and a worker count, then submit queries;
* :mod:`query` — query construction helpers per query class;
* :mod:`report` — the analytics panel: performance breakdowns;
* :mod:`cli` — a small command-line front end.
"""

from repro.engineapi.registry import (
    available_programs,
    get_program,
    register_program,
)
from repro.engineapi.session import Session
from repro.engineapi.report import format_report

__all__ = [
    "available_programs",
    "get_program",
    "register_program",
    "Session",
    "format_report",
]
