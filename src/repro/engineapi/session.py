"""The "play" panel: pick program, graph, partition strategy and n.

A :class:`Session` owns one graph, partitions it with a registered
strategy across ``num_workers`` simulated workers, and runs PIE programs
(by object or registered name) against it, returning
:class:`~repro.core.engine.GrapeResult` with full metering.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.engine import GrapeEngine, GrapeResult
from repro.core.pie import PIEProgram
from repro.engineapi.registry import get_program
from repro.graph.digraph import Graph
from repro.graph.fragment import FragmentedGraph, build_fragments
from repro.partition.base import PartitionReport, Partitioner, evaluate_partition
from repro.partition.registry import get_partitioner
from repro.runtime.backends import ExecutionBackend, make_backend
from repro.runtime.costmodel import CostModel

VertexId = Hashable


class Session:
    """One graph + one partition + a simulated cluster, ready to query.

    Args:
        graph: the data graph.
        num_workers: number of simulated workers (fragments).
        partition: a registered strategy name, or a
            :class:`~repro.partition.base.Partitioner` instance.
        cost_model: simulated cluster parameters.
        check_monotonic: verify the Assurance Theorem's order condition
            on every parameter write.
        validate: statically verify programs with grape-lint before
            running them; error-severity findings raise
            :class:`~repro.errors.AnalysisError` (the static counterpart
            of ``check_monotonic``).
        backend: execution backend name (``"simulated"`` — the default
            in-process virtual-time cluster — or ``"process"``, a pool
            of OS worker processes) or a pre-built
            :class:`~repro.runtime.backends.base.ExecutionBackend`
            instance over this session's fragmentation. One backend is
            shared by every engine the session builds, so process
            workers persist across queries.
        store: fragment storage backend name ("dict"/"csr"); by default
            fragments inherit the graph's own store.
        mode: superstep engine mode — ``"strict"`` (BSP lockstep, the
            default) or ``"relaxed"`` (pipelined waves over per-channel
            FIFOs for aggregator-monotone programs; byte-identical
            answers, lower virtual makespan).
    """

    def __init__(
        self,
        graph: Graph,
        num_workers: int = 4,
        partition: str | Partitioner = "hash",
        cost_model: CostModel | None = None,
        check_monotonic: bool = False,
        routing: str = "coordinator",
        validate: bool = False,
        tracer=None,
        backend: str | ExecutionBackend = "simulated",
        store: str | None = None,
        mode: str = "strict",
    ) -> None:
        self.graph = graph
        self.store = store
        self.num_workers = num_workers
        self.cost_model = cost_model or CostModel()
        self.check_monotonic = check_monotonic
        self.routing = routing
        self.mode = mode
        self.validate = validate
        #: Optional :class:`~repro.obs.Tracer` every engine this session
        #: builds records into (pure observer; see repro.obs).
        self.tracer = tracer
        self._partitioner = (
            partition
            if isinstance(partition, Partitioner)
            else get_partitioner(partition)
        )
        self._fragmented: FragmentedGraph | None = None
        if isinstance(backend, ExecutionBackend):
            self.backend_name = backend.name
            self._backend: ExecutionBackend | None = backend
        else:
            self.backend_name = backend
            self._backend = None

    # ------------------------------------------------------------------
    @classmethod
    def from_catalog(
        cls,
        catalog,
        graph_name: str,
        partition_name: str | None = None,
        **kwargs,
    ) -> "Session":
        """Open a session on a graph stored in a DFS catalog.

        With ``partition_name`` the stored fragmentation is reused
        directly (its fragment count wins over ``num_workers``);
        otherwise the session partitions the loaded graph as usual.
        """
        graph = catalog.load_graph(graph_name)
        if partition_name is None:
            return cls(graph, **kwargs)
        fragmented = catalog.load_partition(graph_name, partition_name)
        session = cls(
            graph,
            num_workers=fragmented.num_fragments,
            **{k: v for k, v in kwargs.items() if k != "num_workers"},
        )
        session._fragmented = fragmented
        return session

    # ------------------------------------------------------------------
    @property
    def partitioner(self) -> Partitioner:
        """The partition strategy this session uses."""
        return self._partitioner

    @property
    def fragmented(self) -> FragmentedGraph:
        """The fragmentation, computed lazily and cached."""
        if self._fragmented is None:
            assignment = self._partitioner(self.graph, self.num_workers)
            self._fragmented = build_fragments(
                self.graph,
                assignment,
                self.num_workers,
                strategy=self._partitioner.name,
                store=self.store,
            )
        return self._fragmented

    def repartition(
        self,
        partition: str | Partitioner | None = None,
        num_workers: int | None = None,
    ) -> FragmentedGraph:
        """Change strategy and/or worker count; invalidates fragments."""
        if partition is not None:
            self._partitioner = (
                partition
                if isinstance(partition, Partitioner)
                else get_partitioner(partition)
            )
        if num_workers is not None:
            self.num_workers = num_workers
        self._fragmented = None
        if self._backend is not None:
            # The backend's workers own copies of the old fragments.
            self._backend.close()
            self._backend = None
        return self.fragmented

    def partition_report(self) -> PartitionReport:
        """Quality metrics of the current partition."""
        return evaluate_partition(
            self.graph,
            self.fragmented.assignment,
            self.num_workers,
            strategy=self._partitioner.name,
        )

    # ------------------------------------------------------------------
    @property
    def backend(self):
        """The session's shared execution backend (built lazily)."""
        if self._backend is None:
            self._backend = make_backend(
                self.backend_name,
                self.fragmented,
                deterministic=self.cost_model.deterministic,
                mode=self.mode,
            )
        return self._backend

    def close(self) -> None:
        """Release backend resources (worker processes); idempotent.

        The session stays usable — the next engine lazily rebuilds the
        backend — but any EngineState held against the old process pool
        must be re-pushed by the caller (``run_incremental`` does this
        on every call, so serving flows keep working).
        """
        if self._backend is not None:
            self._backend.close()
            self._backend = None

    def engine(self) -> GrapeEngine:
        """A GrapeEngine bound to this session's fragmentation."""
        return GrapeEngine(
            self.fragmented,
            cost_model=self.cost_model,
            check_monotonic=self.check_monotonic,
            routing=self.routing,
            tracer=self.tracer,
            backend=self.backend,
            mode=self.mode,
        )

    def run(
        self, program: PIEProgram, query: object, **engine_kwargs
    ) -> GrapeResult:
        """Run a PIE program instance against this session's graph.

        Extra keyword arguments go to
        :meth:`~repro.core.engine.GrapeEngine.run` (``keep_state``,
        ``checkpoint``).
        """
        if self.validate:
            from repro.analysis import analyze_program, require_clean

            require_clean(
                analyze_program(program),
                subject=f"PIE program {type(program).__name__}",
            )
        return self.engine().run(program, query, **engine_kwargs)

    def run_registered(
        self, name: str, query: object, **program_kwargs
    ) -> GrapeResult:
        """Run a program from the API library by its registered name."""
        program = get_program(name, **program_kwargs)
        return self.engine().run(program, query)
