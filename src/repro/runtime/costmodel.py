"""Deterministic cost model turning measured work into simulated time.

A BSP superstep on a real cluster costs::

    makespan = max_i(compute_i) + network(total_bytes, n_messages) + barrier

We charge:

* ``compute_i`` — *measured* wall time of worker ``i``'s sequential
  computation this superstep (real Python execution, not an estimate),
  scaled by ``compute_scale`` (1.0 by default);
* network time — ``latency`` per communicating round plus
  ``bytes / bandwidth``; message batches between the same pair of hosts
  share the round latency, as MPI implementations do;
* ``barrier`` — fixed synchronization overhead per superstep.

Defaults approximate a commodity 1 Gb/s cluster. Absolute simulated
seconds are not meant to match the paper's testbed; *ratios* between
engines/configurations are the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Parameters of the simulated cluster's performance."""

    #: Seconds of latency charged once per superstep in which any pair of
    #: hosts communicates.
    latency: float = 1e-3
    #: Network bandwidth in bytes/second (shared, as on one switch).
    bandwidth: float = 125e6  # 1 Gb/s
    #: Fixed BSP barrier overhead per superstep, seconds.
    barrier_overhead: float = 5e-4
    #: Per-worker channel-drain bookkeeping per relaxed wave, seconds.
    #: Replaces the global barrier in ``mode="relaxed"``; keeping it at
    #: or below ``barrier_overhead`` preserves the per-round makespan
    #: dominance argument (relaxed advance <= strict superstep time).
    drain_overhead: float = 2.5e-4
    #: Multiplier applied to measured Python compute time.
    compute_scale: float = 1.0
    #: When true, compute intervals are NOT measured with the wall clock;
    #: only deterministic charges (injected straggler delays, supervisor
    #: backoff) enter the makespan. Replays then produce byte-identical
    #: ``RunMetrics`` — the mode the observability purity suite runs in.
    deterministic: bool = False

    def network_time(self, total_bytes: int, rounds: int) -> float:
        """Simulated seconds to move ``total_bytes`` in ``rounds`` batches."""
        if total_bytes <= 0 and rounds <= 0:
            return 0.0
        lat = self.latency if rounds > 0 else 0.0
        return lat + total_bytes / self.bandwidth

    def superstep_time(
        self,
        compute_makespan: float,
        total_bytes: int,
        rounds: int,
    ) -> float:
        """Simulated duration of one superstep."""
        return (
            self.compute_scale * compute_makespan
            + self.network_time(total_bytes, rounds)
            + self.barrier_overhead
        )
