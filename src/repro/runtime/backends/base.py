"""The execution-backend contract: where worker-local code actually runs.

GRAPE's workflow (Fig. 1) separates *what* a worker computes (PEval /
IncEval / the ΔG repair hooks, over its own fragment) from *where* that
compute happens. :class:`ExecutionBackend` is that seam: the engine
expresses every worker-local step as a named op from
:mod:`repro.runtime.backends.ops` applied to the worker's
:class:`~repro.runtime.backends.ops.WorkerContext`, and the backend
decides whether the context lives in this process
(:class:`~repro.runtime.backends.simulated.SimulatedBackend`) or in a
worker OS process that owns a pickled copy of the fragment
(:class:`~repro.runtime.backends.process.ProcessBackend`).

Both backends run the *same* op functions, so answers, metrics and
repair stats are byte-identical by construction — the simulator is the
oracle, the process pool is the measurement substrate (locked down by
``tests/property/test_backend_oracle.py``).

Coordinator-side work (message aggregation, Assemble, the invalidation
region bookkeeping) always runs in the engine's process; only the
per-fragment sequential code crosses the backend boundary.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ProgramError
from repro.graph.fragment import FragmentedGraph


@dataclass(frozen=True)
class WorkerCall:
    """One worker-local op invocation: ``OPS[op](ctx, **args)``."""

    wid: int
    op: str
    args: dict = field(default_factory=dict)


class ExecutionBackend(abc.ABC):
    """Executes worker-local ops; the engine stays backend-agnostic.

    Lifecycle: the engine calls :meth:`bind` (fresh run) or
    :meth:`resume` (incremental run) to install program + state into
    every worker, drives supersteps through :meth:`execute` (metered:
    compute intervals, retries, tracer spans) and one-off bookkeeping
    through :meth:`invoke`/:meth:`invoke_all` (unmetered, exactly like
    the engine's historical out-of-superstep param maintenance), and
    pulls state back with :meth:`pull_state` for checkpoints and
    ``keep_state=True`` results.
    """

    #: short identifier used by CLI/Session switches ("simulated", ...)
    name: str = ""
    #: True when supersteps run on real OS parallelism and clusters
    #: should record wall-clock per-superstep timings (``wall_ms``).
    measures_wall: bool = False
    #: True when worker state is in-process and may carry live observer
    #: callbacks (monotonicity checker) and fault injection.
    supports_observers: bool = False
    #: True when the deterministic fault injector can interpose on
    #: worker compute (requires in-process workers).
    supports_faults: bool = False

    def __init__(self, fragmented: FragmentedGraph) -> None:
        self.fragmented = fragmented

    @property
    def num_workers(self) -> int:
        """One worker per fragment."""
        return self.fragmented.num_fragments

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def execute(
        self,
        step,
        supervisor,
        calls: Sequence[WorkerCall],
        on_result: Callable[[int, object], None] | None = None,
    ) -> dict[int, object]:
        """Run at most one op per worker inside superstep ``step``.

        Results are produced in call order; ``on_result(wid, value)``
        fires as each worker's result lands — *before* later workers'
        results — so the engine's sends interleave with compute exactly
        as the sequential simulator always has (fault schedules are
        order-sensitive). Returns wid -> result.
        """

    @abc.abstractmethod
    def invoke(self, wid: int, op: str, **args: object) -> object:
        """Run one op outside any superstep (unmetered bookkeeping)."""

    @abc.abstractmethod
    def invoke_all(
        self, calls: Sequence[WorkerCall]
    ) -> dict[int, list[object]]:
        """Run op batches outside any superstep, one chunk per worker.

        Returns wid -> list of results in that worker's call order.
        """

    @abc.abstractmethod
    def is_active(self, wid: int) -> bool:
        """``program.is_active`` over the worker's current state."""

    @abc.abstractmethod
    def sync_effects(self, effects: dict[int, list]) -> None:
        """Replay coordinator-side fragment mutations on the workers.

        ``effects`` is the fid -> effect-record map collected by
        :func:`repro.core.delta.apply_delta`; backends whose workers
        share this process's fragments treat it as a no-op.
        """

    @abc.abstractmethod
    def close(self) -> None:
        """Release worker resources; the backend is unusable after."""

    # ------------------------------------------------------------------
    # Engine-facing helpers built on the primitives
    # ------------------------------------------------------------------
    def bind(self, program, query, observers=None) -> None:
        """Install a program + fresh parameter stores on every worker."""
        if observers is not None and not self.supports_observers:
            raise ProgramError(
                f"the {self.name!r} backend cannot host monotonicity "
                "observers; use the simulated backend"
            )
        self.invoke_all(
            [
                WorkerCall(
                    wid,
                    "bind",
                    {
                        "program": program,
                        "query": query,
                        "observer": observers[wid] if observers else None,
                    },
                )
                for wid in range(self.num_workers)
            ]
        )

    def resume(self, program, query, state) -> None:
        """Install a program plus a prior run's per-worker state."""
        self.invoke_all(
            [
                WorkerCall(
                    wid,
                    "resume",
                    {
                        "program": program,
                        "query": query,
                        "partial": state.partials[wid],
                        "params": state.params[wid],
                    },
                )
                for wid in range(self.num_workers)
            ]
        )

    def push_state(self, partials: list, params: list) -> None:
        """Replace every worker's partial + parameter store (recovery)."""
        self.invoke_all(
            [
                WorkerCall(
                    wid,
                    "set_state",
                    {"partial": partials[wid], "params": params[wid]},
                )
                for wid in range(self.num_workers)
            ]
        )

    def pull_state(self) -> tuple[list, list]:
        """(partials, params) lists, one entry per worker, in wid order."""
        results = self.invoke_all(
            [
                WorkerCall(wid, "get_state")
                for wid in range(self.num_workers)
            ]
        )
        partials = [results[wid][0][0] for wid in range(self.num_workers)]
        params = [results[wid][0][1] for wid in range(self.num_workers)]
        return partials, params

    def partials(self) -> list:
        """Every worker's current partial answer, in wid order."""
        results = self.invoke_all(
            [
                WorkerCall(wid, "get_partial")
                for wid in range(self.num_workers)
            ]
        )
        return [results[wid][0] for wid in range(self.num_workers)]

    def attach_observers(self, observers: list) -> None:
        """Re-arm monotonicity observers after a state push (recovery)."""
        raise ProgramError(
            f"the {self.name!r} backend cannot host monotonicity "
            "observers; use the simulated backend"
        )
