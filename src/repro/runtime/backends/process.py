"""The multiprocessing backend: one OS process per fragment.

Each worker process receives its fragment once, pickled, at startup and
keeps it (plus the bound program, parameter store and partial answer)
for its whole life — the paper's "fragment lives on its worker" data
placement. Per superstep the coordinator sends every worker exactly one
pipe message carrying its whole op chunk (op + routed message payloads)
and receives exactly one reply (results + an activity flag + measured
compute seconds), so IPC cost is two messages per worker per superstep
regardless of how much border traffic the superstep routes.

Determinism: workers run the same op functions as the simulator on the
same inputs, replies are gathered in worker-id order, and under
``CostModel(deterministic=True)`` workers report zero elapsed compute —
so metrics, traces and answers are byte-identical to the simulated
backend (the oracle property suite locks this down). Outside
deterministic mode the reply carries real perf-counter seconds, which
the cluster meters instead of parent wall time.

Not supported here (simulator-only, by design): fault injection and the
monotonicity checker's write observers — both need in-process workers.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from typing import Callable, Sequence

from repro.errors import EngineRuntimeError, ProgramError
from repro.graph.fragment import FragmentedGraph
from repro.runtime.backends.base import ExecutionBackend, WorkerCall
from repro.runtime.backends.ops import OPS, WorkerContext, probe_active

#: How to make `peval`/`inceval` pickle failures actionable.
_PICKLE_HINT = (
    "run `grape lint` — the GRP5xx pickle-safety rules locate program "
    "state (lambdas, local closures, open handles) that cannot cross "
    "a process boundary"
)


def _worker_main(conn, wid: int, frag_bytes: bytes, deterministic: bool):
    """Worker process loop: apply op chunks to the owned context."""
    ctx = WorkerContext(wid, pickle.loads(frag_bytes))
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg[0] == "exit":
            conn.close()
            return
        chunk = msg[1]
        results: list[object] = []
        error: BaseException | None = None
        start = 0.0 if deterministic else time.perf_counter()
        for op, args in chunk:
            try:
                results.append(OPS[op](ctx, **args))
            except BaseException as exc:  # shipped to the coordinator
                error = exc
                break
        elapsed = 0.0 if deterministic else time.perf_counter() - start
        try:
            active = probe_active(ctx)
        except Exception:
            active = False
        if error is not None:
            try:
                conn.send(("err", error, active, elapsed))
            except Exception:
                conn.send(
                    (
                        "err",
                        EngineRuntimeError(
                            f"worker {wid} failed in op "
                            f"{op!r}: {type(error).__name__}: {error} "
                            "(original exception is not picklable)"
                        ),
                        active,
                        elapsed,
                    )
                )
            continue
        try:
            conn.send(("ok", results, active, elapsed))
        except Exception as exc:
            conn.send(
                (
                    "err",
                    EngineRuntimeError(
                        f"worker {wid}: result of op {op!r} is not "
                        f"picklable ({exc}); {_PICKLE_HINT}"
                    ),
                    active,
                    elapsed,
                )
            )


class ProcessBackend(ExecutionBackend):
    """Real parallel execution on a pool of fragment-owning processes."""

    name = "process"
    supports_observers = False
    supports_faults = False

    def __init__(
        self,
        fragmented: FragmentedGraph,
        deterministic: bool = True,
        start_method: str | None = None,
        poll_interval: float = 0.1,
    ) -> None:
        super().__init__(fragmented)
        self.deterministic = deterministic
        self.measures_wall = not deterministic
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            # fork inherits the parent's hash seed, keeping set/dict
            # iteration byte-identical across the boundary; spawn is the
            # portable fallback.
            start_method = "fork" if "fork" in methods else "spawn"
        self._mp = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self._poll_interval = poll_interval
        self._procs: list | None = None
        self._conns: list = []
        #: replies owed per worker (drained before new dispatch after an
        #: aborted gather, so one failed superstep cannot desync pipes).
        self._owed: list[int] = []
        self._active: list[bool] = [False] * self.num_workers
        self._closed = False

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_started(self) -> None:
        if self._closed:
            raise EngineRuntimeError("ProcessBackend already closed")
        if self._procs is not None:
            return
        procs, conns = [], []
        for frag in self.fragmented.fragments:
            parent_conn, child_conn = self._mp.Pipe()
            proc = self._mp.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    frag.fid,
                    pickle.dumps(frag, protocol=pickle.HIGHEST_PROTOCOL),
                    self.deterministic,
                ),
                name=f"grape-worker-{frag.fid}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            procs.append(proc)
            conns.append(parent_conn)
        self._procs = procs
        self._conns = conns
        self._owed = [0] * self.num_workers

    def close(self) -> None:
        """Terminate the worker pool (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._procs is None:
            return
        for conn in self._conns:
            try:
                conn.send(("exit",))
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        self._procs = None
        self._conns = []

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------
    def _send_chunk(self, wid: int, chunk: list[tuple]) -> None:
        self._drain(wid)
        try:
            self._conns[wid].send(("call", chunk))
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            ops = ", ".join(op for op, _ in chunk)
            raise ProgramError(
                f"cannot ship ops [{ops}] to worker {wid}: arguments are "
                f"not picklable ({exc}); {_PICKLE_HINT}"
            ) from exc
        self._owed[wid] += 1

    def _recv(self, wid: int) -> tuple:
        conn = self._conns[wid]
        proc = self._procs[wid]
        while not conn.poll(self._poll_interval):
            if not proc.is_alive():
                self._owed[wid] = 0
                raise EngineRuntimeError(
                    f"worker process {wid} died (exit code "
                    f"{proc.exitcode}) before replying"
                )
        reply = conn.recv()
        self._owed[wid] -= 1
        status, payload, active, elapsed = reply
        self._active[wid] = active
        return status, payload, elapsed

    def _drain(self, wid: int) -> None:
        """Discard replies left over from an aborted gather."""
        while self._owed[wid] > 0:
            self._recv(wid)

    def _gather(self, order: list[int]) -> dict[int, list[object]]:
        """Collect one reply per worker in the given order; raise errors.

        On a worker error the remaining owed replies are still drained
        (keeping every pipe aligned) before the error is re-raised, so
        the pool survives a failed run and serves the next one.
        """
        results: dict[int, list[object]] = {}
        error: BaseException | None = None
        for wid in order:
            try:
                status, payload, _ = self._recv(wid)
            except EngineRuntimeError as exc:
                error = error or exc
                continue
            if status == "err":
                error = error or payload
                continue
            if error is None:
                results[wid] = payload
        if error is not None:
            raise error
        return results

    # ------------------------------------------------------------------
    # ExecutionBackend primitives
    # ------------------------------------------------------------------
    def execute(
        self,
        step,
        supervisor,
        calls: Sequence[WorkerCall],
        on_result: Callable[[int, object], None] | None = None,
    ) -> dict[int, object]:
        self._ensure_started()
        order: list[int] = []
        for call in calls:
            if call.wid in order:
                raise EngineRuntimeError(
                    "ProcessBackend.execute: one op per worker per "
                    f"superstep (worker {call.wid} appears twice)"
                )
            order.append(call.wid)
            self._send_chunk(call.wid, [(call.op, call.args)])
        tracer = getattr(step, "tracer", None)
        results: dict[int, object] = {}
        error: BaseException | None = None
        for wid in order:
            if tracer is not None:
                tracer.compute_begin(wid)
            try:
                status, payload, elapsed = self._recv(wid)
            except EngineRuntimeError as exc:
                if tracer is not None:
                    tracer.compute_end(wid, ok=False)
                error = error or exc
                continue
            if status == "err":
                if tracer is not None:
                    tracer.compute_end(wid, ok=False)
                error = error or payload
                continue
            step.charge(wid, elapsed)
            if tracer is not None:
                tracer.compute_end(wid, ok=True)
            if error is None:
                value = payload[0]
                results[wid] = value
                if on_result is not None:
                    on_result(wid, value)
        if error is not None:
            raise error
        return results

    def invoke(self, wid: int, op: str, **args: object) -> object:
        self._ensure_started()
        self._send_chunk(wid, [(op, args)])
        return self._gather([wid])[wid][0]

    def invoke_all(
        self, calls: Sequence[WorkerCall]
    ) -> dict[int, list[object]]:
        self._ensure_started()
        chunks: dict[int, list[tuple]] = {}
        for call in calls:
            chunks.setdefault(call.wid, []).append((call.op, call.args))
        for wid, chunk in chunks.items():
            self._send_chunk(wid, chunk)
        return self._gather(list(chunks))

    def is_active(self, wid: int) -> bool:
        # Piggybacked on every reply: the worker probes its own program
        # after each chunk, so no extra IPC round is needed here.
        return self._active[wid]

    def sync_effects(self, effects: dict[int, list]) -> None:
        if not effects:
            return
        if self._procs is None and not self._closed:
            # Workers not started yet: they will pickle the already-
            # mutated fragments at startup.
            return
        self.invoke_all(
            [
                WorkerCall(fid, "apply_effects", {"records": records})
                for fid, records in sorted(effects.items())
                if records
            ]
        )
