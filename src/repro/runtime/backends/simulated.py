"""The in-process backend: today's virtual-time cluster, extracted.

Worker contexts live in the engine's process and share the engine's
:class:`~repro.graph.fragment.FragmentedGraph` objects, so ΔG routing
needs no effect replay and the monotonicity checker's observers can
hook parameter writes directly. Every superstep op runs under
:meth:`~repro.core.supervisor.Supervisor.attempt` — fault injection,
transient retries, deterministic backoff and tracer compute spans all
behave exactly as they did when the engine inlined these loops.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.graph.fragment import FragmentedGraph
from repro.runtime.backends.base import ExecutionBackend, WorkerCall
from repro.runtime.backends.ops import OPS, WorkerContext, probe_active


class SimulatedBackend(ExecutionBackend):
    """Sequential in-process execution on the simulated cluster."""

    name = "simulated"
    measures_wall = False
    supports_observers = True
    supports_faults = True

    def __init__(self, fragmented: FragmentedGraph) -> None:
        super().__init__(fragmented)
        self._contexts = [
            WorkerContext(frag.fid, frag) for frag in fragmented.fragments
        ]

    def execute(
        self,
        step,
        supervisor,
        calls: Sequence[WorkerCall],
        on_result: Callable[[int, object], None] | None = None,
    ) -> dict[int, object]:
        results: dict[int, object] = {}
        for call in calls:
            ctx = self._contexts[call.wid]
            fn = OPS[call.op]
            args = call.args
            value = supervisor.attempt(
                step,
                call.wid,
                lambda fn=fn, ctx=ctx, args=args: fn(ctx, **args),
            )
            results[call.wid] = value
            if on_result is not None:
                on_result(call.wid, value)
        return results

    def invoke(self, wid: int, op: str, **args: object) -> object:
        return OPS[op](self._contexts[wid], **args)

    def invoke_all(
        self, calls: Sequence[WorkerCall]
    ) -> dict[int, list[object]]:
        results: dict[int, list[object]] = {}
        for call in calls:
            value = OPS[call.op](self._contexts[call.wid], **call.args)
            results.setdefault(call.wid, []).append(value)
        return results

    def is_active(self, wid: int) -> bool:
        return probe_active(self._contexts[wid])

    def sync_effects(self, effects: dict[int, list]) -> None:
        # Workers share the engine's fragment objects; the coordinator's
        # apply_delta already mutated them.
        return None

    def attach_observers(self, observers: list) -> None:
        for wid, observer in enumerate(observers):
            if observer is not None:
                self._contexts[wid].params.attach_observer(observer)

    def close(self) -> None:
        return None
