"""Execution backends: where GRAPE's worker-local code runs.

Two interchangeable substrates behind one
:class:`~repro.runtime.backends.base.ExecutionBackend` contract:

* ``simulated`` — today's in-process virtual-time cluster (the
  deterministic oracle; supports fault injection and the monotonicity
  checker);
* ``process`` — a pool of OS worker processes, one per fragment, for
  measuring *actual* wall-clock speedup while producing byte-identical
  answers and metrics.

Pick by name through :func:`make_backend`, ``Session(backend=...)`` or
``grape run --backend``.
"""

from __future__ import annotations

from repro.errors import ProgramError
from repro.graph.fragment import FragmentedGraph
from repro.runtime.backends.base import ExecutionBackend, WorkerCall
from repro.runtime.backends.ops import OPS, WorkerContext, probe_active
from repro.runtime.backends.process import ProcessBackend
from repro.runtime.backends.simulated import SimulatedBackend

BACKENDS = ("simulated", "process")


def make_backend(
    name: str,
    fragmented: FragmentedGraph,
    deterministic: bool = True,
    mode: str = "strict",
    **kwargs: object,
) -> ExecutionBackend:
    """An :class:`ExecutionBackend` by name over ``fragmented``.

    ``deterministic`` only matters to the process backend (whether
    workers report real compute seconds or zeros); the simulator's
    determinism is governed by the engine's
    :class:`~repro.runtime.costmodel.CostModel` as always.

    ``mode`` is the superstep engine mode the backend will serve
    (``"strict"``/``"relaxed"``) — validated here so a typo'd mode
    fails at construction, not deep inside the first run. Both
    backends serve both modes; fault injection and ``check_monotonic``
    remain strict-simulator-only and are rejected by the engine.
    """
    from repro.core.engine import MODES

    if mode not in MODES:
        raise ProgramError(
            f"unknown superstep mode {mode!r}; choose from "
            + ", ".join(MODES)
        )
    if name == "simulated":
        return SimulatedBackend(fragmented)
    if name == "process":
        return ProcessBackend(
            fragmented, deterministic=deterministic, **kwargs
        )
    raise ProgramError(
        f"unknown execution backend {name!r}; choose from "
        + ", ".join(BACKENDS)
    )


__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "OPS",
    "ProcessBackend",
    "SimulatedBackend",
    "WorkerCall",
    "WorkerContext",
    "make_backend",
    "probe_active",
]
