"""Worker-local ops: the exact sequential code a GRAPE worker runs.

Each op is a module-level function over a :class:`WorkerContext` — the
per-worker bundle of fragment, bound program, parameter store and
partial answer. The engine used to express these as inline closures;
hoisting them here lets every :class:`~repro.runtime.backends.base.
ExecutionBackend` run the *same* code, which is what makes the process
backend byte-identical to the simulator: there is only one
implementation of "apply messages, run IncEval, ship changes".

Ops must stay picklable-by-reference (module-level, no captured state)
and their arguments/results must survive ``pickle`` — that is the whole
handoff contract of the process backend (see grape-lint's GRP5xx family
for the static gate on program authors).
"""

from __future__ import annotations

from typing import Hashable

from repro.core.update_params import UpdateParams
from repro.graph.fragment import Fragment, apply_fragment_effects

VertexId = Hashable


class WorkerContext:
    """One worker's entire local state, wherever the worker lives."""

    __slots__ = ("wid", "frag", "program", "query", "params", "partial",
                 "started")

    def __init__(self, wid: int, frag: Fragment) -> None:
        self.wid = wid
        self.frag = frag
        self.program = None
        self.query = None
        self.params: UpdateParams | None = None
        self.partial = None
        #: True once a partial exists (PEval ran or state was pushed);
        #: gates the activity probe so it is never asked about a worker
        #: that has not computed anything yet.
        self.started = False


def probe_active(ctx: WorkerContext) -> bool:
    """``program.is_active`` over the current state (False pre-PEval)."""
    if not ctx.started or ctx.program is None:
        return False
    return bool(ctx.program.is_active(ctx.frag, ctx.partial))


# ----------------------------------------------------------------------
# Lifecycle ops
# ----------------------------------------------------------------------
def op_bind(ctx: WorkerContext, program, query, observer=None):
    """Fresh run: bind the program and declare its update parameters."""
    ctx.program = program
    ctx.query = query
    spec = program.param_spec(query)
    store = UpdateParams(spec.aggregator, spec.default, observer)
    program.declare_params(ctx.frag, query, store)
    ctx.params = store
    ctx.partial = None
    ctx.started = False
    return None


def op_rebind_params(ctx: WorkerContext):
    """Full-restart fallback: fresh parameter store, partial kept."""
    spec = ctx.program.param_spec(ctx.query)
    store = UpdateParams(spec.aggregator, spec.default)
    ctx.program.declare_params(ctx.frag, ctx.query, store)
    ctx.params = store
    return None


def op_resume(ctx: WorkerContext, program, query, partial, params):
    """Incremental run: bind the program plus a prior run's state."""
    ctx.program = program
    ctx.query = query
    ctx.partial = partial
    ctx.params = params
    ctx.started = True
    return None


def op_set_state(ctx: WorkerContext, partial, params):
    """Checkpoint recovery: replace state under the bound program."""
    ctx.partial = partial
    ctx.params = params
    ctx.started = True
    return None


def op_get_state(ctx: WorkerContext):
    return ctx.partial, ctx.params


def op_get_partial(ctx: WorkerContext):
    return ctx.partial


def op_apply_effects(ctx: WorkerContext, records):
    """Replay coordinator-side ΔG fragment mutations on this copy."""
    apply_fragment_effects(ctx.frag, records)
    return len(records)


# ----------------------------------------------------------------------
# Superstep compute ops (each returns what the engine ships)
# ----------------------------------------------------------------------
def op_peval(ctx: WorkerContext):
    """Superstep 0: the program's sequential PEval over the fragment."""
    ctx.partial = ctx.program.peval(ctx.frag, ctx.query, ctx.params)
    ctx.started = True
    return ctx.params.consume_changes()


def op_inceval(ctx: WorkerContext, payloads, locally_active):
    """Apply routed messages M_i, run IncEval if anything moved.

    Idempotent under the aggregate function (re-applying the same
    payloads and re-running IncEval is safe), which is what lets the
    supervisor retry this op in place after a transient failure.
    """
    changed: set[VertexId] = set()
    for payload in payloads:
        for v, value in payload.items():
            if ctx.params.apply_remote(v, value):
                changed.add(v)
    if changed or locally_active:
        ctx.partial = ctx.program.inceval(
            ctx.frag, ctx.query, ctx.partial, ctx.params, changed
        )
    return changed, ctx.params.consume_changes()


def op_repair(ctx: WorkerContext, region):
    """Re-derive an invalidated region after unsafe ΔG ops."""
    ctx.partial = ctx.program.repair_partial(
        ctx.frag, ctx.query, ctx.partial, ctx.params, set(region)
    )
    return ctx.params.consume_changes()


def op_update(ctx: WorkerContext, ops):
    """Monotone-safe ΔG repair through ``on_graph_update``."""
    ctx.partial = ctx.program.on_graph_update(
        ctx.frag, ctx.query, ctx.partial, ctx.params, ops
    )
    return ctx.params.consume_changes()


def op_seed_region(ctx: WorkerContext, ops):
    """Seed + locally close the invalidated region from unsafe ops."""
    seeds = ctx.program.delta_seeds(ctx.frag, ctx.query, ctx.partial, ops)
    return ctx.program.invalidated_region(
        ctx.frag, ctx.query, ctx.partial, set(seeds)
    )


def op_expand_region(ctx: WorkerContext, fresh):
    """Close freshly received invalidated vertices over local deps."""
    return ctx.program.invalidated_region(
        ctx.frag, ctx.query, ctx.partial, set(fresh)
    )


def op_reship(ctx: WorkerContext):
    """Recovery: re-send every non-default declared border value."""
    store = ctx.params
    for v in store.declared:
        if store.get(v) != store.default:
            store.touch(v)
    return store.consume_changes()


# ----------------------------------------------------------------------
# Unmetered bookkeeping ops
# ----------------------------------------------------------------------
def op_declare_fresh(ctx: WorkerContext):
    """Declare parameters for border vertices a ΔG batch created."""
    fresh = ctx.frag.border - ctx.params.declared
    if fresh:
        ctx.params.declare(fresh)
    return len(fresh)


def op_reset_params(ctx: WorkerContext, region):
    """Reset a region's parameters to the order's top element."""
    return ctx.params.reset(region)


#: Every op a backend may be asked to run, by wire name.
OPS = {
    "bind": op_bind,
    "rebind_params": op_rebind_params,
    "resume": op_resume,
    "set_state": op_set_state,
    "get_state": op_get_state,
    "get_partial": op_get_partial,
    "apply_effects": op_apply_effects,
    "peval": op_peval,
    "inceval": op_inceval,
    "repair": op_repair,
    "update": op_update,
    "seed_region": op_seed_region,
    "expand_region": op_expand_region,
    "reship": op_reship,
    "declare_fresh": op_declare_fresh,
    "reset_params": op_reset_params,
}
