"""Messages exchanged through the simulated MPI controller."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.sizeof import message_size

#: Rank of the coordinator P0 in the simulated cluster.
COORDINATOR = -1


@dataclass(frozen=True)
class Message:
    """One point-to-point message with its accounted wire size."""

    src: int
    dst: int
    payload: object
    size: int = field(default=0)

    @staticmethod
    def make(src: int, dst: int, payload: object) -> "Message":
        """Build a message, computing its wire size once."""
        return Message(src=src, dst=dst, payload=payload,
                       size=message_size(payload))
