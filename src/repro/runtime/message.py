"""Messages exchanged through the simulated MPI controller."""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass, field

from repro.utils.sizeof import message_size

#: Rank of the coordinator P0 in the simulated cluster.
COORDINATOR = -1


def payload_checksum(payload: object) -> int:
    """CRC32 over the payload's canonical byte encoding.

    Used by the transport-integrity layer: the sender stamps the
    checksum at :meth:`Message.make` time, the receiver recomputes it at
    delivery, and a mismatch exposes in-flight corruption before the
    payload can reach an update-parameter store. Pickle is stable for
    the same objects within one process, which is the only comparison
    the simulated cluster ever makes.
    """
    return zlib.crc32(pickle.dumps(payload, protocol=4))


@dataclass(frozen=True)
class Message:
    """One point-to-point message with its accounted wire size.

    ``seq`` and ``checksum`` are only populated when the transport
    integrity layer is active (a fault injector is installed): ``seq``
    is the per-(src, dst) channel sequence number used for exactly-once
    delivery, ``checksum`` the sender-side payload CRC.
    """

    src: int
    dst: int
    payload: object
    size: int = field(default=0)
    seq: int | None = None
    checksum: int | None = None

    @staticmethod
    def make(
        src: int,
        dst: int,
        payload: object,
        seq: int | None = None,
        with_checksum: bool = False,
    ) -> "Message":
        """Build a message, computing its wire size (and checksum) once."""
        return Message(
            src=src,
            dst=dst,
            payload=payload,
            size=message_size(payload),
            seq=seq,
            checksum=payload_checksum(payload) if with_checksum else None,
        )
