"""Simulated MPI controller: mailboxes, superstep flush, byte metering.

Ranks ``0..n-1`` are workers; rank :data:`~repro.runtime.message.COORDINATOR`
is the coordinator ``P0``. Messages posted during a superstep are
invisible until :meth:`MPIController.flush`, which models the BSP barrier:
it moves outgoing messages into destination inboxes and returns traffic
statistics for the superstep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EngineRuntimeError
from repro.runtime.message import COORDINATOR, Message


@dataclass(frozen=True)
class TrafficStats:
    """Bytes/messages moved at one flush (one superstep's traffic)."""

    bytes_sent: int
    messages_sent: int
    communicating_pairs: int


class MPIController:
    """In-process stand-in for MPICH2 point-to-point messaging."""

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise EngineRuntimeError("cluster needs at least one worker")
        self.num_workers = num_workers
        self._outgoing: list[Message] = []
        self._inboxes: dict[int, list[Message]] = {
            rank: [] for rank in range(num_workers)
        }
        self._inboxes[COORDINATOR] = []

    def _check_rank(self, rank: int) -> None:
        if rank != COORDINATOR and not 0 <= rank < self.num_workers:
            raise EngineRuntimeError(f"invalid rank {rank}")

    def send(self, src: int, dst: int, payload: object) -> Message:
        """Queue a message for delivery at the next flush."""
        self._check_rank(src)
        self._check_rank(dst)
        msg = Message.make(src, dst, payload)
        self._outgoing.append(msg)
        return msg

    def flush(self) -> TrafficStats:
        """Barrier: deliver queued messages; return traffic stats.

        Messages between co-located ranks still count as messages (the
        paper's message counts include them) but intra-worker traffic is
        free of bytes only when src == dst; worker->coordinator and
        cross-worker messages are charged fully.
        """
        bytes_sent = 0
        pairs: set[tuple[int, int]] = set()
        count = len(self._outgoing)
        for msg in self._outgoing:
            self._inboxes[msg.dst].append(msg)
            if msg.src != msg.dst:
                bytes_sent += msg.size
                pairs.add((msg.src, msg.dst))
        self._outgoing = []
        return TrafficStats(
            bytes_sent=bytes_sent,
            messages_sent=count,
            communicating_pairs=len(pairs),
        )

    def receive(self, rank: int) -> list[Message]:
        """Drain and return the inbox of ``rank``."""
        self._check_rank(rank)
        inbox = self._inboxes[rank]
        self._inboxes[rank] = []
        return inbox

    def peek(self, rank: int) -> list[Message]:
        """Read the inbox without draining (termination checks)."""
        self._check_rank(rank)
        return list(self._inboxes[rank])

    def pending(self) -> bool:
        """True if any rank has undelivered or queued messages."""
        if self._outgoing:
            return True
        return any(box for box in self._inboxes.values())
