"""Simulated MPI controller: mailboxes, superstep flush, byte metering.

Ranks ``0..n-1`` are workers; rank :data:`~repro.runtime.message.COORDINATOR`
is the coordinator ``P0``. Messages posted during a superstep are
invisible until :meth:`MPIController.flush`, which models the BSP barrier:
it moves outgoing messages into destination inboxes and returns traffic
statistics for the superstep.

Transport integrity (active iff a fault injector is installed — the
plain path is byte-for-byte the original):

* every message carries a per-(src, dst) **sequence number** and a
  **payload checksum** (:func:`~repro.runtime.message.payload_checksum`);
* the sender retains a copy until delivery is confirmed, so a dropped
  or corrupted message is **retransmitted** at the next flush;
* the receiver **dedups** by (src, dst, seq), so injected duplicates
  (and duplicate retransmissions) are applied exactly once;
* a checksum mismatch marks the copy corrupt: it is discarded and the
  retained copy retransmitted — corruption is *detected*, never applied;
* a message still undelivered after ``max_attempts`` flushes raises
  :class:`~repro.errors.TransportError` (persistent drop/corruption is
  a documented failure, not an infinite fixpoint).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import EngineRuntimeError, TransportError
from repro.runtime.message import COORDINATOR, Message, payload_checksum
from repro.utils.sizeof import message_size


@dataclass(frozen=True)
class TrafficStats:
    """Bytes/messages moved at one flush (one superstep's traffic)."""

    bytes_sent: int
    messages_sent: int
    communicating_pairs: int


class MPIController:
    """In-process stand-in for MPICH2 point-to-point messaging.

    Args:
        num_workers: worker ranks ``0..n-1`` (plus the coordinator).
        injector: optional
            :class:`~repro.runtime.faults.injector.FaultInjector`;
            installing one enables the transport-integrity layer.
        max_attempts: flushes a message may stay undeliverable before
            the controller gives up with a :class:`TransportError`.
    """

    def __init__(
        self,
        num_workers: int,
        injector=None,
        max_attempts: int = 50,
    ) -> None:
        if num_workers < 1:
            raise EngineRuntimeError("cluster needs at least one worker")
        self.num_workers = num_workers
        self._injector = injector
        self._max_attempts = max_attempts
        self._outgoing: list[Message] = []
        self._inboxes: dict[int, list[Message]] = {
            rank: [] for rank in range(num_workers)
        }
        self._inboxes[COORDINATOR] = []
        # Integrity-layer state (unused on the plain path).
        self._next_seq: dict[tuple[int, int], int] = {}
        #: (src, dst, seq) -> [message, attempts]; the sender-side
        #: retention buffer awaiting delivery confirmation.
        self._unacked: dict[tuple[int, int, int], list] = {}
        self._delivered: set[tuple[int, int, int]] = set()

    def _check_rank(self, rank: int) -> None:
        if rank != COORDINATOR and not 0 <= rank < self.num_workers:
            raise EngineRuntimeError(f"invalid rank {rank}")

    def send(self, src: int, dst: int, payload: object) -> Message:
        """Queue a message for delivery at the next flush."""
        self._check_rank(src)
        self._check_rank(dst)
        if self._injector is None:
            msg = Message.make(src, dst, payload)
            self._outgoing.append(msg)
            return msg
        seq = self._next_seq.get((src, dst), 0)
        self._next_seq[(src, dst)] = seq + 1
        msg = Message.make(src, dst, payload, seq=seq, with_checksum=True)
        self._unacked[(src, dst, seq)] = [msg, 0]
        return msg

    def flush(self) -> TrafficStats:
        """Barrier: deliver queued messages; return traffic stats.

        Messages between co-located ranks still count as messages (the
        paper's message counts include them) but intra-worker traffic is
        free of bytes only when src == dst; worker->coordinator and
        cross-worker messages are charged fully.
        """
        if self._injector is None:
            return self._flush_plain()
        return self._flush_with_integrity()

    def _flush_plain(self) -> TrafficStats:
        bytes_sent = 0
        pairs: set[tuple[int, int]] = set()
        count = len(self._outgoing)
        for msg in self._outgoing:
            self._inboxes[msg.dst].append(msg)
            if msg.src != msg.dst:
                bytes_sent += msg.size
                pairs.add((msg.src, msg.dst))
        self._outgoing = []
        return TrafficStats(
            bytes_sent=bytes_sent,
            messages_sent=count,
            communicating_pairs=len(pairs),
        )

    def _flush_with_integrity(self) -> TrafficStats:
        counters = self._injector.counters
        bytes_sent = 0
        count = 0
        pairs: set[tuple[int, int]] = set()
        for key in list(self._unacked):
            entry = self._unacked[key]
            msg, attempts = entry
            if attempts >= self._max_attempts:
                raise TransportError(
                    f"message {msg.src}->{msg.dst} seq={msg.seq} "
                    f"undeliverable after {attempts} attempts "
                    "(persistent drop or corruption on this channel)"
                )
            if attempts > 0:
                counters.retransmissions += 1
            entry[1] = attempts + 1
            copies = self._injector.on_wire(msg)
            # A dropped message still consumed the wire once; duplicates
            # and corrupted copies are charged per copy sent.
            wire_copies = max(1, len(copies))
            if msg.src != msg.dst:
                bytes_sent += msg.size * wire_copies
                pairs.add((msg.src, msg.dst))
            count += wire_copies
            for copy in copies:
                if payload_checksum(copy.payload) != copy.checksum:
                    counters.corruptions_detected += 1
                    continue  # retained copy stays; retransmit next flush
                seq_key = (copy.src, copy.dst, copy.seq)
                if seq_key in self._delivered:
                    counters.duplicates_discarded += 1
                    continue
                self._delivered.add(seq_key)
                self._inboxes[copy.dst].append(copy)
                self._unacked.pop(key, None)  # delivery confirmed
        return TrafficStats(
            bytes_sent=bytes_sent,
            messages_sent=count,
            communicating_pairs=len(pairs),
        )

    def receive(self, rank: int) -> list[Message]:
        """Drain and return the inbox of ``rank``."""
        self._check_rank(rank)
        inbox = self._inboxes[rank]
        self._inboxes[rank] = []
        return inbox

    def peek(self, rank: int) -> list[Message]:
        """Read the inbox without draining (termination checks)."""
        self._check_rank(rank)
        return list(self._inboxes[rank])

    def pending(self) -> bool:
        """True if any rank has undelivered or queued messages."""
        if self._outgoing or self._unacked:
            return True
        return any(box for box in self._inboxes.values())

    def reset_in_flight(self) -> None:
        """Discard every queued, retained and undelivered message.

        Used by checkpoint recovery: the reloaded state predates all
        in-flight traffic, and re-shipping border values regenerates
        whatever mattered. Sequence counters and the delivered set are
        kept so post-recovery messages can never collide with pre-crash
        ones.
        """
        self._outgoing = []
        self._unacked.clear()
        for rank in self._inboxes:
            self._inboxes[rank] = []


class ChannelEntry:
    """One buffered border-message batch on a (src, dst) channel.

    ``send_clock`` is the sender's virtual clock when the batch left —
    stamped by the engine *after* the sending wave's compute is metered
    (or after the barrier for strict phases inside a relaxed run), so
    the receiver's arrival time can be derived per channel instead of
    per barrier.
    """

    __slots__ = ("src", "dst", "payload", "size", "send_clock")

    def __init__(self, src: int, dst: int, payload: object) -> None:
        self.src = src
        self.dst = dst
        self.payload = payload
        self.size = message_size(payload)
        self.send_clock: float | None = None


class ChannelTransport:
    """Per-(src, dst) FIFO channels for barrier-relaxed supersteps.

    The fpgagraphlib idiom in software: instead of one global mailbox
    flushed at the barrier, every ordered worker pair owns a FIFO. A
    receiver *drains* all of its inbound channels at the start of its
    next wave — sorted by source rank, which reproduces exactly the
    inbox order the strict ``routing="direct"`` barrier would have
    delivered (senders are processed in ascending rank per superstep).

    ``total_sent``/``total_delivered`` are the global in-flight counters
    the :class:`QuiescenceDetector` double-counts for termination.
    """

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise EngineRuntimeError("transport needs at least one worker")
        self.num_workers = num_workers
        self._queues: dict[tuple[int, int], deque] = {}
        self.total_sent = 0
        self.total_delivered = 0

    def send(self, src: int, dst: int, payload: object) -> ChannelEntry:
        """Buffer one batch on the (src, dst) channel; returns the entry
        so the caller can stamp its ``send_clock`` once known."""
        if not 0 <= src < self.num_workers or not 0 <= dst < self.num_workers:
            raise EngineRuntimeError(
                f"invalid channel {src}->{dst}: relaxed mode is "
                "worker-to-worker only (no coordinator mailbox)"
            )
        entry = ChannelEntry(src, dst, payload)
        self._queues.setdefault((src, dst), deque()).append(entry)
        self.total_sent += 1
        return entry

    def drain(self, dst: int) -> list[ChannelEntry]:
        """Pop everything pending for ``dst``, sorted by source rank."""
        out: list[ChannelEntry] = []
        for src in range(self.num_workers):
            queue = self._queues.get((src, dst))
            while queue:
                out.append(queue.popleft())
        self.total_delivered += len(out)
        return out

    def has_pending(self, dst: int) -> bool:
        """True when any channel into ``dst`` holds an undrained batch."""
        return any(
            self._queues.get((src, dst))
            for src in range(self.num_workers)
        )

    def in_flight(self) -> tuple[int, int]:
        """The (sent, delivered) counters for a quiescence probe."""
        return self.total_sent, self.total_delivered


class QuiescenceDetector:
    """Mattern-style double-counting termination for relaxed mode.

    Without a barrier there is no all-workers-converged vote, so the
    engine terminates only after **two consecutive clean probes**: both
    must see ``sent == delivered`` with no active worker, and the
    counters must not have moved between them. A single clean snapshot
    can race a batch that is counted as sent after the probe read
    ``delivered``; the unchanged second probe proves no message was in
    flight across the whole window.
    """

    def __init__(self) -> None:
        self._last: tuple[int, int] | None = None

    def probe(self, sent: int, delivered: int, active: bool) -> bool:
        """Record one probe; True when quiescence is confirmed."""
        if sent != delivered or active:
            self._last = None
            return False
        snapshot = (sent, delivered)
        if self._last == snapshot:
            return True
        self._last = snapshot
        return False

    def reset(self) -> None:
        """Any observed activity invalidates the pending first probe."""
        self._last = None
