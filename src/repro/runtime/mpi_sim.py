"""Simulated MPI controller: mailboxes, superstep flush, byte metering.

Ranks ``0..n-1`` are workers; rank :data:`~repro.runtime.message.COORDINATOR`
is the coordinator ``P0``. Messages posted during a superstep are
invisible until :meth:`MPIController.flush`, which models the BSP barrier:
it moves outgoing messages into destination inboxes and returns traffic
statistics for the superstep.

Transport integrity (active iff a fault injector is installed — the
plain path is byte-for-byte the original):

* every message carries a per-(src, dst) **sequence number** and a
  **payload checksum** (:func:`~repro.runtime.message.payload_checksum`);
* the sender retains a copy until delivery is confirmed, so a dropped
  or corrupted message is **retransmitted** at the next flush;
* the receiver **dedups** by (src, dst, seq), so injected duplicates
  (and duplicate retransmissions) are applied exactly once;
* a checksum mismatch marks the copy corrupt: it is discarded and the
  retained copy retransmitted — corruption is *detected*, never applied;
* a message still undelivered after ``max_attempts`` flushes raises
  :class:`~repro.errors.TransportError` (persistent drop/corruption is
  a documented failure, not an infinite fixpoint).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EngineRuntimeError, TransportError
from repro.runtime.message import COORDINATOR, Message, payload_checksum


@dataclass(frozen=True)
class TrafficStats:
    """Bytes/messages moved at one flush (one superstep's traffic)."""

    bytes_sent: int
    messages_sent: int
    communicating_pairs: int


class MPIController:
    """In-process stand-in for MPICH2 point-to-point messaging.

    Args:
        num_workers: worker ranks ``0..n-1`` (plus the coordinator).
        injector: optional
            :class:`~repro.runtime.faults.injector.FaultInjector`;
            installing one enables the transport-integrity layer.
        max_attempts: flushes a message may stay undeliverable before
            the controller gives up with a :class:`TransportError`.
    """

    def __init__(
        self,
        num_workers: int,
        injector=None,
        max_attempts: int = 50,
    ) -> None:
        if num_workers < 1:
            raise EngineRuntimeError("cluster needs at least one worker")
        self.num_workers = num_workers
        self._injector = injector
        self._max_attempts = max_attempts
        self._outgoing: list[Message] = []
        self._inboxes: dict[int, list[Message]] = {
            rank: [] for rank in range(num_workers)
        }
        self._inboxes[COORDINATOR] = []
        # Integrity-layer state (unused on the plain path).
        self._next_seq: dict[tuple[int, int], int] = {}
        #: (src, dst, seq) -> [message, attempts]; the sender-side
        #: retention buffer awaiting delivery confirmation.
        self._unacked: dict[tuple[int, int, int], list] = {}
        self._delivered: set[tuple[int, int, int]] = set()

    def _check_rank(self, rank: int) -> None:
        if rank != COORDINATOR and not 0 <= rank < self.num_workers:
            raise EngineRuntimeError(f"invalid rank {rank}")

    def send(self, src: int, dst: int, payload: object) -> Message:
        """Queue a message for delivery at the next flush."""
        self._check_rank(src)
        self._check_rank(dst)
        if self._injector is None:
            msg = Message.make(src, dst, payload)
            self._outgoing.append(msg)
            return msg
        seq = self._next_seq.get((src, dst), 0)
        self._next_seq[(src, dst)] = seq + 1
        msg = Message.make(src, dst, payload, seq=seq, with_checksum=True)
        self._unacked[(src, dst, seq)] = [msg, 0]
        return msg

    def flush(self) -> TrafficStats:
        """Barrier: deliver queued messages; return traffic stats.

        Messages between co-located ranks still count as messages (the
        paper's message counts include them) but intra-worker traffic is
        free of bytes only when src == dst; worker->coordinator and
        cross-worker messages are charged fully.
        """
        if self._injector is None:
            return self._flush_plain()
        return self._flush_with_integrity()

    def _flush_plain(self) -> TrafficStats:
        bytes_sent = 0
        pairs: set[tuple[int, int]] = set()
        count = len(self._outgoing)
        for msg in self._outgoing:
            self._inboxes[msg.dst].append(msg)
            if msg.src != msg.dst:
                bytes_sent += msg.size
                pairs.add((msg.src, msg.dst))
        self._outgoing = []
        return TrafficStats(
            bytes_sent=bytes_sent,
            messages_sent=count,
            communicating_pairs=len(pairs),
        )

    def _flush_with_integrity(self) -> TrafficStats:
        counters = self._injector.counters
        bytes_sent = 0
        count = 0
        pairs: set[tuple[int, int]] = set()
        for key in list(self._unacked):
            entry = self._unacked[key]
            msg, attempts = entry
            if attempts >= self._max_attempts:
                raise TransportError(
                    f"message {msg.src}->{msg.dst} seq={msg.seq} "
                    f"undeliverable after {attempts} attempts "
                    "(persistent drop or corruption on this channel)"
                )
            if attempts > 0:
                counters.retransmissions += 1
            entry[1] = attempts + 1
            copies = self._injector.on_wire(msg)
            # A dropped message still consumed the wire once; duplicates
            # and corrupted copies are charged per copy sent.
            wire_copies = max(1, len(copies))
            if msg.src != msg.dst:
                bytes_sent += msg.size * wire_copies
                pairs.add((msg.src, msg.dst))
            count += wire_copies
            for copy in copies:
                if payload_checksum(copy.payload) != copy.checksum:
                    counters.corruptions_detected += 1
                    continue  # retained copy stays; retransmit next flush
                seq_key = (copy.src, copy.dst, copy.seq)
                if seq_key in self._delivered:
                    counters.duplicates_discarded += 1
                    continue
                self._delivered.add(seq_key)
                self._inboxes[copy.dst].append(copy)
                self._unacked.pop(key, None)  # delivery confirmed
        return TrafficStats(
            bytes_sent=bytes_sent,
            messages_sent=count,
            communicating_pairs=len(pairs),
        )

    def receive(self, rank: int) -> list[Message]:
        """Drain and return the inbox of ``rank``."""
        self._check_rank(rank)
        inbox = self._inboxes[rank]
        self._inboxes[rank] = []
        return inbox

    def peek(self, rank: int) -> list[Message]:
        """Read the inbox without draining (termination checks)."""
        self._check_rank(rank)
        return list(self._inboxes[rank])

    def pending(self) -> bool:
        """True if any rank has undelivered or queued messages."""
        if self._outgoing or self._unacked:
            return True
        return any(box for box in self._inboxes.values())

    def reset_in_flight(self) -> None:
        """Discard every queued, retained and undelivered message.

        Used by checkpoint recovery: the reloaded state predates all
        in-flight traffic, and re-shipping border values regenerates
        whatever mattered. Sequence counters and the delivered set are
        kept so post-recovery messages can never collide with pre-crash
        ones.
        """
        self._outgoing = []
        self._unacked.clear()
        for rank in self._inboxes:
            self._inboxes[rank] = []
