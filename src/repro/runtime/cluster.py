"""The simulated cluster: workers + coordinator + metering glue.

Engines drive the cluster through a small protocol::

    cluster = Cluster(num_workers=4)
    with cluster.superstep("peval") as step:
        for wid in range(cluster.num_workers):
            with step.compute(wid):
                ...  # run worker-local sequential code
            step.send(wid, COORDINATOR, payload)
    # metrics now include the superstep's makespan + traffic

A GRAPE superstep contains *two* exchanges — coordinator routes messages
to workers, workers reply with changed parameters — so
:class:`SuperstepHandle` supports an intermediate :meth:`deliver` whose
traffic is accounted to the same superstep.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.runtime.costmodel import CostModel
from repro.runtime.message import COORDINATOR, Message
from repro.runtime.metrics import RunMetrics, SuperstepMetrics
from repro.runtime.mpi_sim import ChannelTransport, MPIController


class PipelinedClocks:
    """Per-worker virtual clocks for barrier-relaxed rounds.

    In strict BSP every superstep advances one shared clock by the
    slowest lane; in relaxed mode each worker's clock advances
    independently (drain waits + its own compute + drain overhead) and
    the run's simulated time is the *frontier* — the maximum clock. The
    metered duration of a wave is the frontier's advance since the last
    mark, so per-superstep times still sum to the run makespan.
    """

    def __init__(self, num_workers: int) -> None:
        self.clocks: dict[int, float] = {w: 0.0 for w in range(num_workers)}
        self._mark = 0.0

    def frontier(self) -> float:
        """The furthest worker clock (the run's virtual makespan)."""
        return max(self.clocks.values(), default=0.0)

    def advance(self) -> float:
        """Frontier movement since the last mark (one wave's duration)."""
        frontier = self.frontier()
        moved = frontier - self._mark
        self._mark = frontier
        return max(moved, 0.0)

    def barrier(self, seconds: float) -> float:
        """A strict phase inside a relaxed run: everyone waits for the
        frontier, then the phase's full superstep time is charged."""
        frontier = self.frontier() + seconds
        for worker in self.clocks:
            self.clocks[worker] = frontier
        return self.advance()


class SuperstepHandle:
    """Accounting context for one BSP superstep."""

    def __init__(
        self, cluster: "Cluster", phase: str, relaxed: bool = False
    ) -> None:
        self._cluster = cluster
        self.phase = phase
        #: True for a barrier-relaxed wave: traffic moved over the
        #: channel transport and simulated time is the clock frontier's
        #: advance, not makespan + network + barrier.
        self.relaxed = relaxed
        self.index = len(cluster.metrics.supersteps)
        self._compute: dict[int, float] = {}
        self._bytes = 0
        self._messages = 0
        self._pairs = 0
        self._channel_pairs: set[tuple[int, int]] = set()
        #: src rank -> [messages, bytes] shipped via :meth:`send`.
        self._sends: dict[int, list[int]] = {}
        #: real wall-clock start, only when the cluster measures wall
        #: time (process backend); None keeps golden traces byte-stable.
        self._wall_start = (
            time.perf_counter() if cluster.measure_wall else None
        )
        faults = cluster.metrics.faults
        self._faults_base = faults.total_injected
        self._retries_base = faults.retries

    @property
    def tracer(self):
        """The cluster's tracer (None when untraced); for backends."""
        return self._cluster.tracer

    @contextmanager
    def compute(self, worker: int) -> Iterator[None]:
        """Measure a worker's (or the coordinator's) compute interval.

        With a fault injector installed, entering the interval may raise
        the scheduled :class:`~repro.errors.WorkerFailure`, and straggler
        delays are charged on top of the measured time. Under
        ``CostModel(deterministic=True)`` the wall clock is never read;
        only the (deterministic) straggler delay is charged.
        """
        injector = self._cluster.injector
        tracer = self._cluster.tracer
        if tracer is not None:
            tracer.compute_begin(worker)
        delay = 0.0
        try:
            if injector is not None:
                delay = injector.on_compute(worker, self.index, self.phase)
        except BaseException:
            if tracer is not None:
                tracer.compute_end(worker, ok=False)
            raise
        deterministic = self._cluster.cost_model.deterministic
        start = 0.0 if deterministic else time.perf_counter()
        ok = True
        try:
            yield
        except BaseException:
            ok = False
            raise
        finally:
            if deterministic:
                elapsed = delay
            else:
                elapsed = time.perf_counter() - start + delay
            self._compute[worker] = self._compute.get(worker, 0.0) + elapsed
            if tracer is not None:
                tracer.compute_end(worker, ok=ok, straggler_delay=delay)

    def charge(self, worker: int, seconds: float) -> None:
        """Add pre-measured compute seconds for ``worker``."""
        self._compute[worker] = self._compute.get(worker, 0.0) + seconds

    def compute_seconds(self, worker: int) -> float:
        """Metered compute seconds of ``worker`` so far this superstep."""
        return self._compute.get(worker, 0.0)

    def send(self, src: int, dst: int, payload: object) -> Message:
        """Send a message for delivery in the next superstep."""
        msg = self._cluster.mpi.send(src, dst, payload)
        counts = self._sends.setdefault(src, [0, 0])
        counts[0] += 1
        counts[1] += msg.size
        return msg

    def send_channel(self, src: int, dst: int, payload: object):
        """Buffer a batch on the relaxed channel transport.

        Byte/message/pair accounting mirrors :meth:`send` + barrier
        flush, so strict and relaxed supersteps report comparable
        traffic totals; only the delivery schedule differs. Returns the
        :class:`~repro.runtime.mpi_sim.ChannelEntry` so the engine can
        stamp its ``send_clock``.
        """
        entry = self._cluster.channels.send(src, dst, payload)
        counts = self._sends.setdefault(src, [0, 0])
        counts[0] += 1
        counts[1] += entry.size
        self._messages += 1
        if src != dst:
            self._bytes += entry.size
            self._channel_pairs.add((src, dst))
        return entry

    def deliver(self) -> None:
        """Mid-superstep flush: deliver queued messages now.

        Traffic is still charged to this superstep; use it when the
        coordinator's routed messages must reach workers within the same
        BSP round (the paper's step (a) then step (b)).
        """
        traffic = self._cluster.mpi.flush()
        self._bytes += traffic.bytes_sent
        self._messages += traffic.messages_sent
        self._pairs += traffic.communicating_pairs

    def finish(self) -> SuperstepMetrics:
        """Barrier: flush traffic, compute simulated time, record metrics."""
        self.deliver()
        self._pairs += len(self._channel_pairs)
        worker_times = [
            t for w, t in self._compute.items() if w != COORDINATOR
        ]
        makespan = max(worker_times, default=0.0)
        # Coordinator work is serialized with the workers' barrier.
        makespan += self._compute.get(COORDINATOR, 0.0)
        clocks = self._cluster.clocks
        if clocks is None:
            simulated = self._cluster.cost_model.superstep_time(
                makespan, self._bytes, self._pairs
            )
        elif self.relaxed:
            # The engine advanced each worker's clock inside the wave;
            # the wave's duration is the frontier's movement.
            simulated = clocks.advance()
        else:
            # A strict phase inside a relaxed run synchronizes every
            # clock at the frontier plus the full superstep time.
            simulated = clocks.barrier(
                self._cluster.cost_model.superstep_time(
                    makespan, self._bytes, self._pairs
                )
            )
        faults = self._cluster.metrics.faults
        metrics = SuperstepMetrics(
            index=self.index,
            phase=self.phase,
            compute_makespan=makespan,
            compute_total=sum(self._compute.values()),
            bytes_sent=self._bytes,
            messages_sent=self._messages,
            simulated_time=simulated,
            active_workers=len(worker_times),
            faults_injected=faults.total_injected - self._faults_base,
            retries=faults.retries - self._retries_base,
        )
        self._cluster.metrics.add_superstep(metrics)
        for worker, seconds in self._compute.items():
            self._cluster.metrics.charge_worker(worker, seconds)
        wall_ms = None
        if self._wall_start is not None:
            wall_ms = (time.perf_counter() - self._wall_start) * 1000.0
        tracer = self._cluster.tracer
        if tracer is not None:
            tracer.step_end(
                self.index,
                self.phase,
                bytes_sent=self._bytes,
                messages=self._messages,
                pairs=self._pairs,
                sends=self._sends,
                faults=metrics.faults_injected,
                retries=metrics.retries,
                wall_ms=wall_ms,
            )
        return metrics


class Cluster:
    """``n`` simulated workers plus coordinator ``P0``."""

    def __init__(
        self,
        num_workers: int,
        cost_model: CostModel | None = None,
        engine_name: str = "",
        injector=None,
        tracer=None,
        measure_wall: bool = False,
        mode: str = "strict",
    ) -> None:
        self.num_workers = num_workers
        self.cost_model = cost_model or CostModel()
        self.injector = injector
        self.tracer = tracer
        #: record real wall-clock per superstep (process backend); the
        #: virtual timeline and metrics are unaffected.
        self.measure_wall = measure_wall
        self.mode = mode
        self.mpi = MPIController(num_workers, injector=injector)
        #: relaxed-mode state: per-pair FIFO channels + per-worker
        #: virtual clocks (None on strict clusters).
        self.channels: ChannelTransport | None = None
        self.clocks: PipelinedClocks | None = None
        if mode == "relaxed":
            self.channels = ChannelTransport(num_workers)
            self.clocks = PipelinedClocks(num_workers)
        self.metrics = RunMetrics(engine=engine_name, num_workers=num_workers)
        if injector is not None:
            # One counter object end to end: the injector fires into the
            # same FaultCounters the run's metrics expose.
            self.metrics.faults = injector.counters

    @contextmanager
    def superstep(
        self, phase: str, relaxed: bool = False
    ) -> Iterator[SuperstepHandle]:
        """Open a superstep; on exit the barrier flushes and is metered.

        A superstep torn down by an escaping exception (fatal worker
        loss) stays out of the metrics, exactly as before; the tracer —
        if any — records the abort. ``relaxed=True`` marks a
        barrier-relaxed wave (channel traffic, frontier-delta timing).
        """
        handle = SuperstepHandle(self, phase, relaxed=relaxed)
        if self.tracer is not None:
            self.tracer.step_begin(handle.index, phase, relaxed=relaxed)
        try:
            yield handle
        except BaseException:
            if self.tracer is not None:
                self.tracer.step_abort(handle.index, phase)
            raise
        handle.finish()

    def receive(self, rank: int) -> list[Message]:
        """Drain and return the inbox of ``rank``."""
        return self.mpi.receive(rank)

    def reset_metrics(self, engine_name: str = "") -> None:
        """Start fresh metrics (optionally renaming the engine)."""
        self.metrics = RunMetrics(
            engine=engine_name or self.metrics.engine,
            num_workers=self.num_workers,
        )
        if self.injector is not None:
            self.metrics.faults = self.injector.counters
