"""Deterministic fault injection for chaos-testing the GRAPE runtime.

Declare *what* goes wrong with a seed-deterministic
:class:`~repro.runtime.faults.plan.FaultPlan` (worker crashes, message
drop/duplication/corruption, straggler delays), hand it to
``GrapeEngine.run(..., faults=plan)``, and the engine's supervisor plus
the transport-integrity layer absorb the damage — or surface a typed
error — while the metrics record every injected fault and recovery
action. Zero overhead when no plan is installed.
"""

from repro.runtime.faults.injector import FaultInjector
from repro.runtime.faults.plan import (
    FAULT_KINDS,
    CorruptFault,
    CrashFault,
    DropFault,
    DuplicateFault,
    FaultPlan,
    FaultSpec,
    StragglerFault,
    UpdateLagFault,
)

__all__ = [
    "FAULT_KINDS",
    "CorruptFault",
    "CrashFault",
    "DropFault",
    "DuplicateFault",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "StragglerFault",
    "UpdateLagFault",
]
