"""The fault injector: per-run mutable state behind a FaultPlan.

The injector is consulted from exactly two places, chosen so that an
uninstrumented run pays a single ``is None`` check per hook:

* :meth:`FaultInjector.on_compute` — called by
  ``SuperstepHandle.compute`` when a worker (or the coordinator) enters
  its compute interval. Raises a
  :class:`~repro.errors.TransientWorkerFailure` /
  :class:`~repro.errors.FatalWorkerFailure` for crash faults, and
  returns the straggler delay (simulated seconds) to charge to the
  worker's compute time.
* :meth:`FaultInjector.on_wire` — called by ``MPIController.flush`` for
  every message put on the wire. Returns the copies that actually
  arrive: ``[]`` (dropped), ``[msg]`` (clean), ``[msg, msg]``
  (duplicated) or ``[tampered]`` (corrupted; the receiver's checksum
  catches it).

All randomness comes from one ``random.Random(plan.seed)``: the
simulated cluster executes sequentially, so the draw sequence — and
therefore the whole fault schedule — is a pure function of the seed.
"""

from __future__ import annotations

import random

from repro.errors import FatalWorkerFailure, TransientWorkerFailure
from repro.runtime.faults.plan import (
    CorruptFault,
    CrashFault,
    DropFault,
    DuplicateFault,
    FaultPlan,
    StragglerFault,
    UpdateLagFault,
)
from repro.runtime.message import COORDINATOR, Message
from repro.runtime.metrics import FaultCounters

#: Sentinel injected into corrupted payloads (never observed by
#: programs: the checksum mismatch discards the message first).
TAMPER = "\x00__bitflip__"


class FaultInjector:
    """Executes one run's fault schedule; owns the counters it fires."""

    def __init__(
        self, plan: FaultPlan, counters: FaultCounters | None = None
    ) -> None:
        self.plan = plan
        self.counters = counters if counters is not None else FaultCounters()
        self._rng = random.Random(plan.seed)
        #: Remaining firing budget per fault index (None = unlimited).
        self._budget: dict[int, int | None] = {
            i: f.times for i, f in enumerate(plan.faults)
        }

    # ------------------------------------------------------------------
    # Trigger plumbing
    # ------------------------------------------------------------------
    def _fires(self, index: int, fault, deterministic_scope: bool) -> bool:
        """Decide one firing opportunity; consumes RNG/budget as needed."""
        budget = self._budget[index]
        if budget is not None and budget <= 0:
            return False
        if fault.probability > 0.0:
            if self._rng.random() >= fault.probability:
                return False
        elif not deterministic_scope:
            return False
        if budget is not None:
            self._budget[index] = budget - 1
        return True

    @staticmethod
    def _worker_in_scope(fault, worker: int) -> bool:
        if fault.worker is None:
            return worker != COORDINATOR  # coordinator only if targeted
        return worker == fault.worker

    @staticmethod
    def _superstep_in_scope(fault, superstep: int) -> bool:
        # "At or after": a worker idle at exactly k would otherwise dodge
        # its scheduled fault forever, making plans fragile to aim.
        return fault.at_superstep is None or superstep >= fault.at_superstep

    # ------------------------------------------------------------------
    # Hook: SuperstepHandle.compute
    # ------------------------------------------------------------------
    def on_compute(self, worker: int, superstep: int, phase: str) -> float:
        """Consulted at compute entry; returns straggler delay seconds.

        Raises the scheduled :class:`WorkerFailure` for crash faults.
        """
        delay = 0.0
        for i, fault in enumerate(self.plan.faults):
            if isinstance(fault, CrashFault):
                if not self._worker_in_scope(fault, worker):
                    continue
                if not self._superstep_in_scope(fault, superstep):
                    continue
                if not self._fires(i, fault, fault.at_superstep is not None):
                    continue
                self.counters.crashes_injected += 1
                exc_cls = (
                    FatalWorkerFailure if fault.fatal
                    else TransientWorkerFailure
                )
                raise exc_cls(
                    f"injected {'fatal' if fault.fatal else 'transient'} "
                    f"crash of worker {worker} at superstep {superstep} "
                    f"({phase})",
                    worker=worker,
                    superstep=superstep,
                )
            if isinstance(fault, StragglerFault):
                if not self._worker_in_scope(fault, worker):
                    continue
                if not self._superstep_in_scope(fault, superstep):
                    continue
                if not self._fires(i, fault, fault.at_superstep is not None):
                    continue
                self.counters.stragglers_injected += 1
                self.counters.straggler_delay += fault.delay
                delay += fault.delay
        return delay

    # ------------------------------------------------------------------
    # Hook: FleetRouter.apply_updates fan-out
    # ------------------------------------------------------------------
    def on_update(self, worker: int, epoch: int) -> int:
        """Consulted when update batch ``epoch`` is fanned out to a replica.

        Returns the number of consecutive batches the replica falls
        behind (0 = applies the batch normally). The replica keeps
        serving from its stale version; the router's catch-up replay is
        what eventually closes the gap.
        """
        lag = 0
        for i, fault in enumerate(self.plan.faults):
            if not isinstance(fault, UpdateLagFault):
                continue
            if not self._worker_in_scope(fault, worker):
                continue
            if fault.at_epoch is not None and epoch < fault.at_epoch:
                continue
            if not self._fires(i, fault, fault.at_epoch is not None):
                continue
            self.counters.update_lags_injected += 1
            lag += fault.lag
        return lag

    # ------------------------------------------------------------------
    # Hook: MPIController.flush
    # ------------------------------------------------------------------
    @staticmethod
    def _channel_in_scope(fault, msg: Message) -> bool:
        if fault.src is not None and fault.src != msg.src:
            return False
        if fault.dst is not None and fault.dst != msg.dst:
            return False
        return True

    def _tamper(self, msg: Message) -> Message:
        """A copy of ``msg`` whose payload no longer matches its checksum."""
        payload = msg.payload
        if isinstance(payload, dict) and payload:
            tampered: object = dict(payload)
            victim = next(iter(tampered))
            tampered[victim] = TAMPER
        else:
            tampered = TAMPER
        return Message(
            src=msg.src,
            dst=msg.dst,
            payload=tampered,
            size=msg.size,
            seq=msg.seq,
            checksum=msg.checksum,
        )

    def on_wire(self, msg: Message) -> list[Message]:
        """Pass a message through the wire-fault schedule."""
        out = [msg]
        for i, fault in enumerate(self.plan.faults):
            if isinstance(fault, DropFault):
                if self._channel_in_scope(fault, msg) and self._fires(
                    i, fault, True
                ):
                    self.counters.drops_injected += 1
                    return []
            elif isinstance(fault, DuplicateFault):
                if self._channel_in_scope(fault, msg) and self._fires(
                    i, fault, True
                ):
                    self.counters.duplicates_injected += 1
                    out.append(out[0])
            elif isinstance(fault, CorruptFault):
                if self._channel_in_scope(fault, msg) and self._fires(
                    i, fault, True
                ):
                    self.counters.corruptions_injected += 1
                    out[0] = self._tamper(out[0])
        return out
