"""Declarative, seed-deterministic fault plans for chaos testing.

A :class:`FaultPlan` is a list of fault specs plus an RNG seed. The
engine turns it into a :class:`~repro.runtime.faults.injector.FaultInjector`
(one per run, so a plan can be reused across runs and always replays the
same fault schedule). Six fault classes mirror what real BSP clusters
and serving fleets suffer:

* :class:`CrashFault` — a worker dies mid-compute. ``fatal=False``
  models a flaky node the supervisor retries; ``fatal=True`` models
  permanent machine loss, which forces checkpoint recovery.
* :class:`DropFault` — a message vanishes on the wire.
* :class:`DuplicateFault` — a message is delivered twice.
* :class:`CorruptFault` — a message's payload is tampered in flight
  (detected by the receiver's checksum, never silently applied).
* :class:`StragglerFault` — a worker's compute is delayed; the delay is
  charged through the cost model like real compute time.
* :class:`UpdateLagFault` — a serving replica falls behind on ΔG
  batches: it keeps answering queries, but from an older graph version,
  until catch-up replay brings it back (consulted by the fleet router,
  not the engine).

Every spec fires either deterministically (``at_superstep``) or
stochastically (``probability`` per opportunity, drawn from the plan's
seeded RNG), and at most ``times`` times (``None`` = unlimited). Plans
round-trip through JSON (:meth:`FaultPlan.to_dict` /
:meth:`FaultPlan.from_dict`) so the ``grape chaos`` CLI can load them
from files.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import ClassVar

from repro.errors import ProgramError


def _check_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ProgramError(f"fault probability must be in [0, 1], got {p}")


@dataclass(frozen=True)
class CrashFault:
    """Kill a worker's compute with a :class:`WorkerFailure`.

    Attributes:
        worker: target rank (None = any worker; ``-1`` = coordinator).
        at_superstep: fire at the first matching compute at or after
            this cluster superstep index (None = any superstep).
        probability: per-compute chance of firing (0.0 with
            ``at_superstep`` set means "fire deterministically there").
        fatal: permanent loss (checkpoint recovery) vs transient (retry).
        times: maximum number of firings (None = unlimited).
    """

    kind: ClassVar[str] = "crash"

    worker: int | None = None
    at_superstep: int | None = None
    probability: float = 0.0
    fatal: bool = False
    times: int | None = 1

    def __post_init__(self) -> None:
        _check_probability(self.probability)
        if self.at_superstep is None and self.probability == 0.0:
            raise ProgramError(
                "crash fault needs at_superstep and/or probability"
            )


@dataclass(frozen=True)
class StragglerFault:
    """Delay a worker's compute by ``delay`` simulated seconds."""

    kind: ClassVar[str] = "straggler"

    worker: int | None = None
    at_superstep: int | None = None
    probability: float = 0.0
    delay: float = 0.05
    times: int | None = 1

    def __post_init__(self) -> None:
        _check_probability(self.probability)
        if self.delay < 0:
            raise ProgramError(f"straggler delay must be >= 0, got {self.delay}")
        if self.at_superstep is None and self.probability == 0.0:
            raise ProgramError(
                "straggler fault needs at_superstep and/or probability"
            )


@dataclass(frozen=True)
class UpdateLagFault:
    """A serving replica falls behind on ΔG batches.

    Fleet-level fault: consulted by the router's
    :meth:`~repro.runtime.faults.injector.FaultInjector.on_update` hook
    when an update batch is fanned out to a replica. A firing means the
    replica defers applying that batch (and the ``lag - 1`` after it),
    so it keeps serving — correctly, but from a stale graph version —
    until catch-up replay brings it back into step.

    Attributes:
        worker: target replica id (None = any replica).
        at_epoch: fire at the first matching fan-out at or after this
            update-batch index (None = any epoch).
        probability: per-fan-out chance of firing.
        lag: number of consecutive batches the replica misses (>= 1).
        times: maximum number of firings (None = unlimited).
    """

    kind: ClassVar[str] = "update_lag"

    worker: int | None = None
    at_epoch: int | None = None
    probability: float = 0.0
    lag: int = 1
    times: int | None = 1

    def __post_init__(self) -> None:
        _check_probability(self.probability)
        if self.lag < 1:
            raise ProgramError(f"update lag must be >= 1, got {self.lag}")
        if self.at_epoch is None and self.probability == 0.0:
            raise ProgramError(
                "update-lag fault needs at_epoch and/or probability"
            )


@dataclass(frozen=True)
class _MessageFault:
    """Common scope of the wire-level faults (src/dst = None matches any)."""

    src: int | None = None
    dst: int | None = None
    probability: float = 1.0
    times: int | None = 1

    def __post_init__(self) -> None:
        _check_probability(self.probability)


@dataclass(frozen=True)
class DropFault(_MessageFault):
    """Lose a matching message on the wire (forces a retransmission)."""

    kind: ClassVar[str] = "drop"


@dataclass(frozen=True)
class DuplicateFault(_MessageFault):
    """Deliver a matching message twice (exercises receiver dedup)."""

    kind: ClassVar[str] = "duplicate"


@dataclass(frozen=True)
class CorruptFault(_MessageFault):
    """Tamper a matching message's payload in flight."""

    kind: ClassVar[str] = "corrupt"


#: Every concrete fault spec class, keyed by its JSON ``kind``.
FAULT_KINDS = {
    cls.kind: cls
    for cls in (CrashFault, StragglerFault, UpdateLagFault, DropFault,
                DuplicateFault, CorruptFault)
}

FaultSpec = (
    CrashFault | StragglerFault | UpdateLagFault | DropFault
    | DuplicateFault | CorruptFault
)


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible fault schedule: specs + the RNG seed that drives them.

    The plan itself is immutable; per-run mutable state (fire counts,
    the RNG) lives in the injector built by :meth:`injector`, so one
    plan replays identically across any number of runs.
    """

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for f in self.faults:
            if not isinstance(f, tuple(FAULT_KINDS.values())):
                raise ProgramError(f"not a fault spec: {f!r}")

    def injector(self, counters=None):
        """Build a fresh, seeded injector for one engine run."""
        from repro.runtime.faults.injector import FaultInjector

        return FaultInjector(self, counters=counters)

    # ------------------------------------------------------------------
    # JSON round-trip (the `grape chaos --plan file.json` schema)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form: ``{"seed": ..., "faults": [{"kind": ...}]}``."""
        return {
            "seed": self.seed,
            "faults": [
                {"kind": f.kind, **asdict(f)} for f in self.faults
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Parse the :meth:`to_dict` schema (raises ProgramError on junk)."""
        if not isinstance(data, dict):
            raise ProgramError(f"fault plan must be an object, got {data!r}")
        faults = []
        for entry in data.get("faults", []):
            if not isinstance(entry, dict) or "kind" not in entry:
                raise ProgramError(f"fault entry needs a 'kind': {entry!r}")
            kind = entry["kind"]
            try:
                spec_cls = FAULT_KINDS[kind]
            except KeyError:
                raise ProgramError(
                    f"unknown fault kind {kind!r}; "
                    f"available: {sorted(FAULT_KINDS)}"
                ) from None
            kwargs = {k: v for k, v in entry.items() if k != "kind"}
            try:
                faults.append(spec_cls(**kwargs))
            except TypeError as exc:
                raise ProgramError(
                    f"bad {kind!r} fault spec {entry!r}: {exc}"
                ) from None
        return cls(faults=tuple(faults), seed=int(data.get("seed", 0)))
