"""Simulated cluster runtime (the MPI Controller layer of Fig. 2).

The paper's prototype runs on MPICH2 across Aliyun ECS nodes. Here a
:class:`~repro.runtime.cluster.Cluster` hosts ``n`` in-process workers
plus a coordinator, exchanging messages through a simulated MPI
controller that meters bytes and message counts, while a
:class:`~repro.runtime.costmodel.CostModel` converts measured per-worker
compute time and metered traffic into simulated BSP wall-clock time
(per-superstep makespan + network time). See DESIGN.md §2 for why this
substitution preserves the paper's relative results.
"""

from repro.runtime.cluster import Cluster
from repro.runtime.costmodel import CostModel
from repro.runtime.faults import (
    CorruptFault,
    CrashFault,
    DropFault,
    DuplicateFault,
    FaultInjector,
    FaultPlan,
    StragglerFault,
)
from repro.runtime.message import COORDINATOR, Message
from repro.runtime.metrics import FaultCounters, RunMetrics, SuperstepMetrics
from repro.runtime.mpi_sim import MPIController

__all__ = [
    "Cluster",
    "CorruptFault",
    "CostModel",
    "COORDINATOR",
    "CrashFault",
    "DropFault",
    "DuplicateFault",
    "FaultCounters",
    "FaultInjector",
    "FaultPlan",
    "Message",
    "MPIController",
    "RunMetrics",
    "StragglerFault",
    "SuperstepMetrics",
]
