"""Run metrics: the numbers the demo's analytics panel (Fig. 3(4)) shows.

Per superstep we record compute makespan, total compute, bytes, message
counts and which phase (PEval / IncEval / Assemble) the superstep
belonged to; totals and a per-phase breakdown are derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SuperstepMetrics:
    """Accounting for one BSP superstep."""

    index: int
    phase: str
    compute_makespan: float = 0.0
    compute_total: float = 0.0
    bytes_sent: int = 0
    messages_sent: int = 0
    simulated_time: float = 0.0
    active_workers: int = 0


@dataclass
class RunMetrics:
    """Aggregated accounting for one engine run."""

    engine: str = ""
    num_workers: int = 0
    supersteps: list[SuperstepMetrics] = field(default_factory=list)
    worker_compute: dict[int, float] = field(default_factory=dict)

    def add_superstep(self, step: SuperstepMetrics) -> None:
        """Append one superstep's metrics."""
        self.supersteps.append(step)

    def charge_worker(self, worker: int, seconds: float) -> None:
        """Accumulate compute seconds for ``worker``."""
        self.worker_compute[worker] = (
            self.worker_compute.get(worker, 0.0) + seconds
        )

    # ------------------------------------------------------------------
    # Derived totals
    # ------------------------------------------------------------------
    @property
    def num_supersteps(self) -> int:
        """Number of BSP supersteps executed."""
        return len(self.supersteps)

    @property
    def total_time(self) -> float:
        """Simulated wall-clock of the whole run (seconds)."""
        return sum(s.simulated_time for s in self.supersteps)

    @property
    def total_compute(self) -> float:
        """Sum of all workers' compute seconds."""
        return sum(s.compute_total for s in self.supersteps)

    @property
    def total_bytes(self) -> int:
        """Total bytes shipped across all supersteps."""
        return sum(s.bytes_sent for s in self.supersteps)

    @property
    def total_messages(self) -> int:
        """Total messages sent across all supersteps."""
        return sum(s.messages_sent for s in self.supersteps)

    @property
    def communication_mb(self) -> float:
        """Communication volume in MB — Table 1's 'Comm.(MB)' column."""
        return self.total_bytes / 1e6

    def phase_time(self, phase: str) -> float:
        """Simulated time spent in supersteps of ``phase``."""
        return sum(
            s.simulated_time for s in self.supersteps if s.phase == phase
        )

    def phase_breakdown(self) -> dict[str, float]:
        """Phase -> simulated seconds (PEval vs IncEval vs Assemble)."""
        out: dict[str, float] = {}
        for s in self.supersteps:
            out[s.phase] = out.get(s.phase, 0.0) + s.simulated_time
        return out

    def load_imbalance(self) -> float:
        """Max worker compute over mean (1.0 = perfectly balanced)."""
        if not self.worker_compute:
            return 1.0
        values = list(self.worker_compute.values())
        mean = sum(values) / len(values)
        if mean == 0:
            return 1.0
        return max(values) / mean

    def summary(self) -> str:
        """One-line human-readable summary of the run."""
        return (
            f"{self.engine}: time={self.total_time:.4f}s "
            f"supersteps={self.num_supersteps} "
            f"comm={self.communication_mb:.4f}MB "
            f"msgs={self.total_messages}"
        )
