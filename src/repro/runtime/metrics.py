"""Run metrics: the numbers the demo's analytics panel (Fig. 3(4)) shows.

Per superstep we record compute makespan, total compute, bytes, message
counts and which phase (PEval / IncEval / Assemble) the superstep
belonged to; totals and a per-phase breakdown are derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FaultCounters:
    """Fault-injection and recovery accounting for one engine run.

    All zeros when no :class:`~repro.runtime.faults.FaultPlan` is
    installed and nothing failed — the counters exist unconditionally so
    dashboards need no schema branch.
    """

    #: Faults fired by the injector, per class.
    crashes_injected: int = 0
    drops_injected: int = 0
    duplicates_injected: int = 0
    corruptions_injected: int = 0
    stragglers_injected: int = 0
    #: Update-lag faults fired at serving replicas (fleet-level).
    update_lags_injected: int = 0
    #: Simulated seconds of straggler delay charged through the cost model.
    straggler_delay: float = 0.0
    #: Supervisor activity.
    retries: int = 0
    backoff_time: float = 0.0
    recoveries: int = 0
    rounds_lost: int = 0
    recovery_supersteps: int = 0
    #: Transport-integrity layer activity.
    duplicates_discarded: int = 0
    corruptions_detected: int = 0
    retransmissions: int = 0

    @property
    def total_injected(self) -> int:
        """Faults fired across all classes."""
        return (
            self.crashes_injected
            + self.drops_injected
            + self.duplicates_injected
            + self.corruptions_injected
            + self.stragglers_injected
            + self.update_lags_injected
        )

    @property
    def any(self) -> bool:
        """Whether any fault fired or any recovery action ran."""
        return bool(
            self.total_injected
            or self.retries
            or self.recoveries
            or self.retransmissions
            or self.duplicates_discarded
            or self.corruptions_detected
        )

    def as_dict(self) -> dict[str, float]:
        """Counters as a plain dict (for JSON reports)."""
        return {
            "crashes_injected": self.crashes_injected,
            "drops_injected": self.drops_injected,
            "duplicates_injected": self.duplicates_injected,
            "corruptions_injected": self.corruptions_injected,
            "stragglers_injected": self.stragglers_injected,
            "update_lags_injected": self.update_lags_injected,
            "straggler_delay": self.straggler_delay,
            "retries": self.retries,
            "backoff_time": self.backoff_time,
            "recoveries": self.recoveries,
            "rounds_lost": self.rounds_lost,
            "recovery_supersteps": self.recovery_supersteps,
            "duplicates_discarded": self.duplicates_discarded,
            "corruptions_detected": self.corruptions_detected,
            "retransmissions": self.retransmissions,
        }


@dataclass
class SuperstepMetrics:
    """Accounting for one BSP superstep."""

    index: int
    phase: str
    compute_makespan: float = 0.0
    compute_total: float = 0.0
    bytes_sent: int = 0
    messages_sent: int = 0
    simulated_time: float = 0.0
    active_workers: int = 0
    #: Faults fired while this superstep ran (all classes).
    faults_injected: int = 0
    #: Supervisor retries absorbed within this superstep.
    retries: int = 0


@dataclass
class RunMetrics:
    """Aggregated accounting for one engine run."""

    engine: str = ""
    num_workers: int = 0
    supersteps: list[SuperstepMetrics] = field(default_factory=list)
    worker_compute: dict[int, float] = field(default_factory=dict)
    faults: FaultCounters = field(default_factory=FaultCounters)

    def add_superstep(self, step: SuperstepMetrics) -> None:
        """Append one superstep's metrics."""
        self.supersteps.append(step)

    def charge_worker(self, worker: int, seconds: float) -> None:
        """Accumulate compute seconds for ``worker``."""
        self.worker_compute[worker] = (
            self.worker_compute.get(worker, 0.0) + seconds
        )

    # ------------------------------------------------------------------
    # Derived totals
    # ------------------------------------------------------------------
    @property
    def num_supersteps(self) -> int:
        """Number of BSP supersteps executed."""
        return len(self.supersteps)

    @property
    def total_time(self) -> float:
        """Simulated wall-clock of the whole run (seconds)."""
        return sum(s.simulated_time for s in self.supersteps)

    @property
    def total_compute(self) -> float:
        """Sum of all workers' compute seconds."""
        return sum(s.compute_total for s in self.supersteps)

    @property
    def total_bytes(self) -> int:
        """Total bytes shipped across all supersteps."""
        return sum(s.bytes_sent for s in self.supersteps)

    @property
    def total_messages(self) -> int:
        """Total messages sent across all supersteps."""
        return sum(s.messages_sent for s in self.supersteps)

    @property
    def communication_mb(self) -> float:
        """Communication volume in MB — Table 1's 'Comm.(MB)' column."""
        return self.total_bytes / 1e6

    def phase_time(self, phase: str) -> float:
        """Simulated time spent in supersteps of ``phase``."""
        return sum(
            s.simulated_time for s in self.supersteps if s.phase == phase
        )

    def phase_breakdown(self) -> dict[str, float]:
        """Phase -> simulated seconds (PEval vs IncEval vs Assemble)."""
        out: dict[str, float] = {}
        for s in self.supersteps:
            out[s.phase] = out.get(s.phase, 0.0) + s.simulated_time
        return out

    def load_imbalance(self) -> float:
        """Max worker compute over mean (1.0 = perfectly balanced)."""
        if not self.worker_compute:
            return 1.0
        values = list(self.worker_compute.values())
        mean = sum(values) / len(values)
        if mean == 0:
            return 1.0
        return max(values) / mean

    def as_dict(self, include_supersteps: bool = False) -> dict:
        """Metrics as a plain dict — the shared JSON schema of
        ``grape run --json`` and the service report's engine totals.

        ``include_supersteps`` adds the per-superstep trace (omitted by
        default: it grows with the fixpoint length).
        """
        out: dict = {
            "engine": self.engine,
            "num_workers": self.num_workers,
            "num_supersteps": self.num_supersteps,
            "total_time": self.total_time,
            "total_compute": self.total_compute,
            "total_bytes": self.total_bytes,
            "total_messages": self.total_messages,
            "communication_mb": self.communication_mb,
            "load_imbalance": self.load_imbalance(),
            "phase_breakdown": self.phase_breakdown(),
            "faults": self.faults.as_dict(),
        }
        if include_supersteps:
            out["supersteps"] = [
                {
                    "index": s.index,
                    "phase": s.phase,
                    "compute_makespan": s.compute_makespan,
                    "compute_total": s.compute_total,
                    "bytes_sent": s.bytes_sent,
                    "messages_sent": s.messages_sent,
                    "simulated_time": s.simulated_time,
                    "active_workers": s.active_workers,
                    "faults_injected": s.faults_injected,
                    "retries": s.retries,
                }
                for s in self.supersteps
            ]
        return out

    def summary(self) -> str:
        """One-line human-readable summary of the run."""
        line = (
            f"{self.engine}: time={self.total_time:.4f}s "
            f"supersteps={self.num_supersteps} "
            f"comm={self.communication_mb:.4f}MB "
            f"msgs={self.total_messages}"
        )
        if self.faults.any:
            line += (
                f" faults={self.faults.total_injected} "
                f"retries={self.faults.retries} "
                f"recoveries={self.faults.recoveries}"
            )
        return line
